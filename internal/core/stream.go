// Incremental (per-query-sequence) result delivery for the ORIS
// pipeline. The paper's workload is intensive comparison — banks large
// enough that buffering a full alignment table before reporting a
// single line is exactly the wrong memory/latency shape — so the
// pipeline here is factored producer/consumer-style: step 2 still runs
// over the whole seed-code space (hit pairs arrive in seed order, not
// query order, so there is nothing per-query to deliver yet), but
// steps 3–4 process the HSPs of one bank-2 sequence at a time and hand
// each sequence's finished, sorted, E-value-filtered alignments to an
// Emit callback the moment they are final.
//
// Byte-identity with the buffered path is structural, not asserted:
// CompareWithIndex IS the stream path with an appending Emit, so the
// concatenation of emitted groups and the buffered alignment slice are
// the same bytes by construction. The equivalence of per-group step-3
// processing to the old whole-bank walk rests on two facts:
//
//   - extensions never cross record boundaries, so every alignment and
//     HSP lies inside one (bank-1 seq, bank-2 seq) coordinate box and
//     the T_ALIGN containment test can never fire across bank-2
//     sequences — partitioning the diagonal-sorted HSP walk by bank-2
//     sequence preserves every skip/extend decision;
//   - display order (align.SortForDisplay) is query-major, so the
//     whole-bank sort equals the concatenation of per-sequence sorts.
//
// Cancellation: the ctx is checked at every step-2 chunk claim and
// between per-sequence groups, so an abandoned stream stops burning
// cores within one chunk/group, not at the end of the compare.
package core

import (
	"context"
	"time"

	"repro/internal/align"
	"repro/internal/bank"
	"repro/internal/hsp"
	"repro/internal/index"
	"repro/internal/ixcache"
	"repro/internal/stats"
)

// Emit receives one bank-2 sequence's final alignments — deduped,
// E-value-annotated, threshold-filtered, display-sorted. It is called
// exactly once per bank-2 sequence, in bank order, including sequences
// with no alignments (empty group — so consumers can count progress).
// Returning a non-nil error aborts the compare with that error.
type Emit func(seq2 int, alignments []align.Alignment) error

// CompareStream runs the full ORIS pipeline on two banks, delivering
// results incrementally through emit (see Emit for the contract). The
// returned Result carries the run metrics only; its Alignments slice is
// nil — the alignments went through emit.
func CompareStream(ctx context.Context, b1, b2 *bank.Bank, opt Options, emit Emit) (*Result, error) {
	t0 := time.Now()
	p1, p2, err := Prepare(nil, b1, b2, opt)
	if err != nil {
		return nil, err
	}
	indexTime := time.Since(t0)
	res, err := compareStream(ctx, p1.Bank, p2.Bank, p1.Ix, p2.Ix, opt, emit)
	if err != nil {
		return nil, err
	}
	res.Metrics.IndexTime += indexTime
	return res, nil
}

// CompareStreamWithIndex is CompareStream over prepared banks (the
// index builds amortized elsewhere), with the same reuse contract as
// CompareWithIndex: both prepared values must match opt exactly.
func CompareStreamWithIndex(ctx context.Context, p1, p2 *ixcache.Prepared, opt Options, emit Emit) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	o1, o2 := opt.IndexOptions()
	if !p1.MatchesOptions(o1) {
		return nil, matchErr1(o1)
	}
	if !p2.MatchesOptions(o2) {
		return nil, matchErr2(o2)
	}
	return compareStream(ctx, p1.Bank, p2.Bank, p1.Ix, p2.Ix, opt, emit)
}

// compareStream is the shared engine body: step 2 over the whole code
// space (both strands when asked), then steps 3–4 one bank-2 sequence
// at a time, emitting each finished group.
func compareStream(ctx context.Context, b1, b2 *bank.Bank, ix1, ix2 *index.Index, opt Options, emit Emit) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var met Metrics

	// ---- step 1 happened elsewhere: the indexes arrive prebuilt ----
	met.IndexedBank1 = ix1.Indexed
	met.IndexedBank2 = ix2.Indexed
	met.MaskedSeeds = ix1.MaskedOut + ix2.MaskedOut

	// ---- step 2: ordered hit extensions, plus strand ----
	t0 := time.Now()
	plus, err := runStep2(ctx, b1, b2, ix1, ix2, opt, &met)
	if err != nil {
		return nil, err
	}
	groups := groupBySeq2(b2, plus)
	met.Step2Time = time.Since(t0)

	// The reverse-complement pass runs its step 2 up front too: its
	// alignments for query sequence s must merge into s's emitted group,
	// so both strands' HSPs have to exist before the first group closes.
	var rc *bank.Bank
	var minus [][]hsp.HSP
	if opt.Strand == BothStrands {
		rc = b2.ReverseComplement()
		ti := time.Now()
		_, o2 := opt.IndexOptions()
		rcIx := index.Build(rc, o2)
		met.IndexTime += time.Since(ti)
		ti = time.Now()
		rcHSPs, err := runStep2(ctx, b1, rc, ix1, rcIx, opt, &met)
		if err != nil {
			return nil, err
		}
		minus = groupBySeq2(rc, rcHSPs)
		met.Step2Time += time.Since(ti)
	}

	// ---- steps 3–4, one bank-2 sequence at a time ----
	ka, err := stats.Ungapped(opt.Scoring.Match, opt.Scoring.Mismatch)
	if err != nil {
		return nil, err
	}
	m := b1.TotalBases()
	for s := 0; s < b2.NumSeqs(); s++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out := step34(b1, b2, groups[s], opt, ka, m, &met)
		if rc != nil {
			ralns := step34(b1, rc, minus[s], opt, ka, m, &met)
			// Map reverse-complement coordinates back onto the original
			// bank-2 records: offsets reflect within each sequence.
			for i := range ralns {
				a := &ralns[i]
				_, hi := rc.SeqBounds(int(a.Seq2))
				oLo, _ := b2.SeqBounds(int(a.Seq2))
				lo, hi2 := oLo+(hi-a.E2), oLo+(hi-a.S2)
				a.S2, a.E2 = lo, hi2
				// The anchor refers to the discarded reverse-complement
				// bank; clear it so render reports "no anchor" instead
				// of garbage.
				a.Anchor1, a.Anchor2 = 0, 0
				a.Minus = true
			}
			out = append(out, ralns...)
		}
		align.SortForDisplay(out)
		met.Alignments += len(out)
		if err := emit(s, out); err != nil {
			return nil, err
		}
	}
	return &Result{Metrics: met}, nil
}

// runStep2 runs one strand's step 2, folding its counters into met and
// applying the ordered-rule-off dedup of the A1 ablation.
func runStep2(ctx context.Context, b1, b2 *bank.Bank, ix1, ix2 *index.Index, opt Options, met *Metrics) ([]hsp.HSP, error) {
	hsps, st2, err := step2(ctx, b1, b2, ix1, ix2, opt)
	if err != nil {
		return nil, err
	}
	met.HitPairs += st2.hitPairs
	met.Extensions += st2.stats.Extensions
	met.Aborted += st2.stats.Aborted
	if !opt.OrderedRule {
		before := len(hsps)
		hsps = hsp.Dedup(hsps)
		met.DuplicateHSPs += before - len(hsps)
	}
	met.HSPs += len(hsps)
	return hsps, nil
}

// groupBySeq2 buckets HSPs by the bank-2 sequence they lie in and
// diag-sorts each bucket — the step-3 processing order within a group.
// Extensions never cross record boundaries, so an HSP's S2 pins its
// whole box (and any alignment grown from it) to one sequence.
func groupBySeq2(b2 *bank.Bank, hsps []hsp.HSP) [][]hsp.HSP {
	counts := make([]int, b2.NumSeqs())
	for i := range hsps {
		counts[b2.SeqAt(hsps[i].S2)]++
	}
	groups := make([][]hsp.HSP, b2.NumSeqs())
	for s, n := range counts {
		if n > 0 {
			groups[s] = make([]hsp.HSP, 0, n)
		}
	}
	for i := range hsps {
		s := b2.SeqAt(hsps[i].S2)
		groups[s] = append(groups[s], hsps[i])
	}
	for s := range groups {
		hsp.SortByDiag(groups[s])
	}
	return groups
}

// step34 runs gapped extension (step 3) and statistics/dedup/threshold
// (step 4) over one diag-sorted HSP group, returning its surviving
// alignments unsorted (the caller display-sorts after the strand
// merge). m is the bank-1 search-space size for the E-value.
func step34(b1, b2 *bank.Bank, group []hsp.HSP, opt Options, ka stats.KarlinAltschul, m int, met *Metrics) []align.Alignment {
	if len(group) == 0 {
		return nil
	}
	t0 := time.Now()
	var raw []align.Alignment
	if opt.ParallelStep3 && workerCount(opt) > 1 {
		raw = step3Parallel(b1, b2, group, opt, met)
	} else {
		raw = step3Sequential(b1, b2, group, opt, met)
	}
	met.Step3Time += time.Since(t0)

	t0 = time.Now()
	deduped := align.Dedup(raw)
	out := deduped[:0]
	for i := range deduped {
		a := deduped[i]
		n := b2.SeqLen(int(a.Seq2))
		a.EValue = ka.EValue(int(a.Score), m, n)
		a.BitScore = ka.BitScore(int(a.Score))
		if a.EValue <= opt.MaxEValue {
			out = append(out, a)
		} else {
			met.Subthreshold++
		}
	}
	met.Step4Time += time.Since(t0)
	return out
}
