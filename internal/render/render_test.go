package render

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/align"
	"repro/internal/bank"
	"repro/internal/core"
	"repro/internal/fasta"
	"repro/internal/gapped"
)

func mkBank(name string, seqs ...string) *bank.Bank {
	recs := make([]*fasta.Record, len(seqs))
	for i, s := range seqs {
		recs[i] = &fasta.Record{ID: name + "_" + string(rune('a'+i)), Seq: []byte(s)}
	}
	return bank.New(name, recs)
}

func randSeq(rng *rand.Rand, n int) string {
	letters := []byte("ACGT")
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(4)]
	}
	return string(b)
}

func mutateIndel(rng *rand.Rand, s string, pSub, pIndel float64) string {
	letters := []byte("ACGT")
	var out []byte
	for i := 0; i < len(s); i++ {
		r := rng.Float64()
		switch {
		case r < pIndel/2:
		case r < pIndel:
			out = append(out, s[i], letters[rng.Intn(4)])
		case r < pIndel+pSub:
			out = append(out, letters[rng.Intn(4)])
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

// search runs the ORIS engine and returns the banks, alignments and a
// matching renderer.
func search(t *testing.T, s1, s2 string) (*bank.Bank, *bank.Bank, *core.Result, *Renderer) {
	t.Helper()
	b1 := mkBank("db", s1)
	b2 := mkBank("q", s2)
	opt := core.DefaultOptions()
	opt.Dust = false
	res, err := core.Compare(b1, b2, opt)
	if err != nil {
		t.Fatal(err)
	}
	r := New(b1, b2, gapped.FromScoring(opt.Scoring, opt.GappedXDrop))
	return b1, b2, res, r
}

func TestPairwiseIdenticalSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := randSeq(rng, 150)
	_, _, res, r := search(t, s, s)
	if len(res.Alignments) == 0 {
		t.Fatal("no alignments")
	}
	out, err := r.Pairwise(&res.Alignments[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Identities = 150/150 (100%)") {
		t.Errorf("identity line wrong:\n%s", out)
	}
	// Match row must be all bars under the aligned columns.
	if strings.Count(out, "|") != 150 {
		t.Errorf("expected 150 match bars:\n%s", out)
	}
	if !strings.Contains(out, "Query  1") || !strings.Contains(out, "Sbjct  1") {
		t.Errorf("coordinate headers missing:\n%s", out)
	}
}

func TestPairwiseShowsSubstitutions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := randSeq(rng, 100)
	// force one substitution mid-sequence
	b := []byte(s)
	if b[50] == 'A' {
		b[50] = 'C'
	} else {
		b[50] = 'A'
	}
	_, _, res, r := search(t, s, string(b))
	if len(res.Alignments) == 0 {
		t.Fatal("no alignments")
	}
	out, err := r.Pairwise(&res.Alignments[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Identities = 99/100 (99%)") {
		t.Errorf("identity line wrong:\n%s", out)
	}
}

func TestPairwiseShowsGaps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	left := randSeq(rng, 60)
	right := randSeq(rng, 60)
	s1 := left + right
	s2 := left + "ACG" + right // 3-base insertion in the query
	_, _, res, r := search(t, s1, s2)
	if len(res.Alignments) == 0 {
		t.Fatal("no alignments")
	}
	out, err := r.Pairwise(&res.Alignments[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Gaps = 3/123") {
		t.Errorf("gap count wrong:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Errorf("no gap characters rendered:\n%s", out)
	}
}

func TestPairwiseCoordinatesAdvanceCorrectly(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := randSeq(rng, 200)
	_, _, res, r := search(t, s, s)
	r.Width = 50
	out, err := r.Pairwise(&res.Alignments[0])
	if err != nil {
		t.Fatal(err)
	}
	// Blocks of 50: query lines must show 1..50, 51..100, etc.
	for _, want := range []string{"Query  1 ", "Query  51 ", "Query  101", "Query  151"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing block header %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, " 200\n") {
		t.Errorf("final coordinate missing:\n%s", out)
	}
}

func TestPairwiseRandomizedPathsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		s1 := randSeq(rng, 150+rng.Intn(100))
		s2 := mutateIndel(rng, s1, 0.05, 0.01)
		_, _, res, r := search(t, s1, s2)
		for i := range res.Alignments {
			out, err := r.Pairwise(&res.Alignments[i])
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			// The rendered rows must have consistent lengths per block.
			lines := strings.Split(out, "\n")
			for j := 0; j+2 < len(lines); j++ {
				if strings.HasPrefix(lines[j], "Query  ") && strings.HasPrefix(lines[j+2], "Sbjct  ") {
					qf := strings.Fields(lines[j])
					sf := strings.Fields(lines[j+2])
					if len(qf) != 4 || len(sf) != 4 {
						t.Fatalf("trial %d: malformed block lines:\n%s\n%s", trial, lines[j], lines[j+2])
					}
					if len(qf[2]) != len(sf[2]) {
						t.Fatalf("trial %d: row length mismatch:\n%s\n%s", trial, lines[j], lines[j+2])
					}
				}
			}
		}
	}
}

func TestRenderAllSeparatesBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g1, g2 := randSeq(rng, 120), randSeq(rng, 120)
	b1 := mkBank("db", g1, g2)
	b2 := mkBank("q", mutateIndel(rng, g1, 0.03, 0), mutateIndel(rng, g2, 0.03, 0))
	opt := core.DefaultOptions()
	res, err := core.Compare(b1, b2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alignments) < 2 {
		t.Fatalf("want ≥2 alignments, got %d", len(res.Alignments))
	}
	r := New(b1, b2, gapped.FromScoring(opt.Scoring, opt.GappedXDrop))
	out, err := r.RenderAll(res.Alignments)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "Query= ") != len(res.Alignments) {
		t.Errorf("expected %d blocks:\n%s", len(res.Alignments), out)
	}
}

func TestRenderWrongScoringFailsLoudly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := randSeq(rng, 150)
	b1 := mkBank("db", s)
	b2 := mkBank("q", mutateIndel(rng, s, 0.08, 0.01))
	opt := core.DefaultOptions()
	res, err := core.Compare(b1, b2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alignments) == 0 {
		t.Skip("no alignment to render")
	}
	// Renderer built with DIFFERENT scoring: the recovered path cannot
	// reproduce the stored score, and the renderer must say so rather
	// than print a wrong alignment.
	bad := New(b1, b2, gapped.Params{Match: 2, Mismatch: 3, GapOpen: 5, GapExtend: 2, XDrop: 25})
	if _, err := bad.Pairwise(&res.Alignments[0]); err == nil {
		t.Error("mismatched scoring not detected")
	}
}

func TestRenderMinusStrandUnsupported(t *testing.T) {
	a := coreAlignmentWithoutAnchor()
	r := New(mkBank("db", "ACGT"), mkBank("q", "ACGT"),
		gapped.Params{Match: 1, Mismatch: 3, GapOpen: 5, GapExtend: 2, XDrop: 25})
	if _, err := r.Pairwise(&a); err == nil {
		t.Error("anchorless alignment rendered without error")
	}
}

func coreAlignmentWithoutAnchor() (a align.Alignment) {
	a.Minus = true
	return a
}
