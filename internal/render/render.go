// Package render formats gapped alignments as BLAST-style pairwise
// text blocks. The paper's prototype "does not report full alignments.
// It only displays the alignment features" (§3.1, the -m 8 mode);
// this package supplies the full -m 0 style display as the natural
// extension the paper defers to a later release.
//
// The column-level alignment is recovered by re-running the gapped
// X-drop extension from the anchor stored in the Alignment (the HSP
// midpoint of paper §2.3) with edit-path collection enabled — the DP is
// deterministic, so the recovered path reproduces the reported
// coordinates, score and statistics exactly (asserted in tests).
package render

import (
	"fmt"
	"strings"

	"repro/internal/align"
	"repro/internal/bank"
	"repro/internal/dna"
	"repro/internal/gapped"
)

// DefaultWidth is the conventional pairwise block width.
const DefaultWidth = 60

// Renderer formats alignments between two fixed banks.
type Renderer struct {
	Bank1, Bank2 *bank.Bank
	Ext          *gapped.Extender
	// Width is the number of alignment columns per block line.
	Width int
}

// New creates a renderer with the given extension parameters (use the
// same gapped.Params the search ran with so paths match exactly).
func New(b1, b2 *bank.Bank, prm gapped.Params) *Renderer {
	return &Renderer{Bank1: b1, Bank2: b2, Ext: gapped.NewExtender(prm), Width: DefaultWidth}
}

// Pairwise renders one alignment as a BLAST-style block.
func (r *Renderer) Pairwise(a *align.Alignment) (string, error) {
	res, ops, err := r.recover(a)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	q := r.Bank2.SeqID(int(a.Seq2))
	s := r.Bank1.SeqID(int(a.Seq1))
	strand := "Plus/Plus"
	if a.Minus {
		strand = "Plus/Minus"
	}
	fmt.Fprintf(&sb, "Query= %s\nSubject= %s\n", q, s)
	fmt.Fprintf(&sb, " Score = %.1f bits (%d), Expect = %.2g\n", a.BitScore, a.Score, a.EValue)
	fmt.Fprintf(&sb, " Identities = %d/%d (%.0f%%), Gaps = %d/%d (%.0f%%)\n",
		res.Matches, res.AlignLen(), 100*res.Identity(),
		res.GapBases(), res.AlignLen(),
		100*float64(res.GapBases())/float64(res.AlignLen()))
	fmt.Fprintf(&sb, " Strand = %s\n\n", strand)

	// Build the three display rows from the edit path.
	qRow := make([]byte, 0, len(ops))
	mRow := make([]byte, 0, len(ops))
	sRow := make([]byte, 0, len(ops))
	p1, p2 := a.S1, a.S2
	for _, op := range ops {
		switch op {
		case gapped.OpPair:
			c1, c2 := r.Bank1.Data[p1], r.Bank2.Data[p2]
			sRow = append(sRow, decode(c1))
			qRow = append(qRow, decode(c2))
			if c1 == c2 && c1 < 4 {
				mRow = append(mRow, '|')
			} else {
				mRow = append(mRow, ' ')
			}
			p1++
			p2++
		case gapped.OpGap1: // consumes subject (bank 1), gap in query
			sRow = append(sRow, decode(r.Bank1.Data[p1]))
			qRow = append(qRow, '-')
			mRow = append(mRow, ' ')
			p1++
		case gapped.OpGap2: // consumes query (bank 2), gap in subject
			sRow = append(sRow, '-')
			qRow = append(qRow, decode(r.Bank2.Data[p2]))
			mRow = append(mRow, ' ')
			p2++
		default:
			return "", fmt.Errorf("render: unknown op %q", op)
		}
	}
	if p1 != a.E1 || p2 != a.E2 {
		return "", fmt.Errorf("render: recovered path ends at (%d,%d), alignment at (%d,%d)",
			p1, p2, a.E1, a.E2)
	}

	// Emit blocks with 1-based sequence-local coordinates.
	_, qOff := r.Bank2.Coord(a.S2)
	_, sOff := r.Bank1.Coord(a.S1)
	qPos, sPos := int(qOff)+1, int(sOff)+1
	width := r.Width
	if width <= 0 {
		width = DefaultWidth
	}
	for start := 0; start < len(ops); start += width {
		end := start + width
		if end > len(ops) {
			end = len(ops)
		}
		qSeg, mSeg, sSeg := qRow[start:end], mRow[start:end], sRow[start:end]
		qAdv := advance(qSeg)
		sAdv := advance(sSeg)
		fmt.Fprintf(&sb, "Query  %-6d %s  %d\n", qPos, qSeg, qPos+qAdv-1)
		fmt.Fprintf(&sb, "       %-6s %s\n", "", mSeg)
		fmt.Fprintf(&sb, "Sbjct  %-6d %s  %d\n\n", sPos, sSeg, sPos+sAdv-1)
		qPos += qAdv
		sPos += sAdv
	}
	return sb.String(), nil
}

// RenderAll renders every alignment separated by rules.
func (r *Renderer) RenderAll(as []align.Alignment) (string, error) {
	var sb strings.Builder
	for i := range as {
		block, err := r.Pairwise(&as[i])
		if err != nil {
			return "", err
		}
		sb.WriteString(block)
		if i < len(as)-1 {
			sb.WriteString(strings.Repeat("-", 70) + "\n\n")
		}
	}
	return sb.String(), nil
}

// recover re-runs the anchored extension with path collection and
// cross-checks it against the stored alignment.
func (r *Renderer) recover(a *align.Alignment) (gapped.Result, []byte, error) {
	if a.Anchor1 == 0 && a.Anchor2 == 0 {
		return gapped.Result{}, nil, fmt.Errorf("render: alignment has no anchor")
	}
	lo1, hi1 := r.Bank1.SeqBounds(int(a.Seq1))
	lo2, hi2 := r.Bank2.SeqBounds(int(a.Seq2))
	res, ops := r.Ext.ExtendBothPath(r.Bank1.Data, r.Bank2.Data,
		a.Anchor1, a.Anchor2, lo1, hi1, lo2, hi2)
	if res.Score != a.Score || res.AlignLen() != a.Length {
		return res, ops, fmt.Errorf(
			"render: recovered path (score %d, len %d) disagrees with alignment (score %d, len %d); was the renderer built with the search's scoring parameters?",
			res.Score, res.AlignLen(), a.Score, a.Length)
	}
	return res, ops, nil
}

func advance(row []byte) int {
	n := 0
	for _, c := range row {
		if c != '-' {
			n++
		}
	}
	return n
}

func decode(c byte) byte {
	if c < dna.Alphabet {
		return dna.DecodeByte(c)
	}
	return 'N'
}
