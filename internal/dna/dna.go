// Package dna provides the nucleotide alphabet, the paper's 2-bit
// encoding, and basic sequence manipulation used by every other package
// in the repository.
//
// The encoding follows Lavenier (HiCOMB 2008) exactly:
//
//	A C G T
//	00 01 11 10
//
// i.e. A=0, C=1, T=2, G=3. The unusual G/T order is what the paper's
// codeSEED function assumes; keeping it means our seed enumeration order
// matches the published algorithm literally.
package dna

import "fmt"

// Code is a 2-bit nucleotide code in the range [0,3].
type Code = byte

// Nucleotide codes, per the paper's table (A=00, C=01, T=10, G=11).
const (
	A Code = 0
	C Code = 1
	T Code = 2
	G Code = 3
)

// Alphabet is the number of distinct nucleotide codes.
const Alphabet = 4

// Invalid marks a byte that is not a nucleotide (used for 'N' and other
// IUPAC ambiguity characters after encoding). It never equals a valid
// code and never equals a bank sentinel.
const Invalid Code = 0xEE

// encodeTable maps ASCII bytes to 2-bit codes; non-ACGT map to Invalid.
var encodeTable = func() [256]byte {
	var t [256]byte
	for i := range t {
		t[i] = Invalid
	}
	t['A'], t['a'] = A, A
	t['C'], t['c'] = C, C
	t['G'], t['g'] = G, G
	t['T'], t['t'] = T, T
	// U (RNA) is accepted and treated as T.
	t['U'], t['u'] = T, T
	return t
}()

// decodeTable maps 2-bit codes back to upper-case ASCII.
var decodeTable = [Alphabet]byte{'A', 'C', 'T', 'G'}

// complementTable maps a code to its Watson-Crick complement.
// A<->T (0<->2) and C<->G (1<->3): complement(c) = c ^ 2 under this
// encoding for A/T, but C=1 -> G=3 and G=3 -> C=1 is c ^ 2 as well.
// Conveniently the paper's encoding makes complement a single XOR.
var complementTable = [Alphabet]Code{T, G, A, C}

// EncodeByte converts one ASCII nucleotide to its 2-bit code.
// Non-ACGTU bytes (including IUPAC ambiguity codes) return Invalid.
func EncodeByte(b byte) Code { return encodeTable[b] }

// DecodeByte converts a 2-bit code back to an upper-case ASCII
// nucleotide. It panics if the code is not in [0,3]; callers hold the
// invariant that only valid codes reach decoding.
func DecodeByte(c Code) byte {
	if c >= Alphabet {
		panic(fmt.Sprintf("dna: decode of invalid code %#x", c))
	}
	return decodeTable[c]
}

// IsValid reports whether c is a real nucleotide code.
func IsValid(c Code) bool { return c < Alphabet }

// Complement returns the Watson-Crick complement of a valid code.
func Complement(c Code) Code { return complementTable[c] }

// Encode converts an ASCII sequence to 2-bit codes. Ambiguous bytes
// become Invalid. The result is a fresh slice.
func Encode(ascii []byte) []Code {
	out := make([]Code, len(ascii))
	for i, b := range ascii {
		out[i] = encodeTable[b]
	}
	return out
}

// EncodeInto is Encode writing into dst, which must be at least
// len(ascii) long. It returns the number of bytes written.
func EncodeInto(dst []Code, ascii []byte) int {
	_ = dst[:len(ascii)]
	for i, b := range ascii {
		dst[i] = encodeTable[b]
	}
	return len(ascii)
}

// Decode converts 2-bit codes back to ASCII. Invalid codes decode to 'N'.
func Decode(codes []Code) []byte {
	out := make([]byte, len(codes))
	for i, c := range codes {
		if c < Alphabet {
			out[i] = decodeTable[c]
		} else {
			out[i] = 'N'
		}
	}
	return out
}

// ReverseComplement returns the reverse complement of a coded sequence.
// Invalid codes stay Invalid but their positions are still reversed.
func ReverseComplement(codes []Code) []Code {
	out := make([]Code, len(codes))
	for i, c := range codes {
		j := len(codes) - 1 - i
		if c < Alphabet {
			out[j] = complementTable[c]
		} else {
			out[j] = Invalid
		}
	}
	return out
}

// ReverseComplementInPlace reverse-complements codes in place.
func ReverseComplementInPlace(codes []Code) {
	i, j := 0, len(codes)-1
	for i < j {
		ci, cj := codes[i], codes[j]
		codes[i], codes[j] = comp(cj), comp(ci)
		i++
		j--
	}
	if i == j {
		codes[i] = comp(codes[i])
	}
}

func comp(c Code) Code {
	if c < Alphabet {
		return complementTable[c]
	}
	return Invalid
}

// CountValid returns the number of valid nucleotide codes in codes.
func CountValid(codes []Code) int {
	n := 0
	for _, c := range codes {
		if c < Alphabet {
			n++
		}
	}
	return n
}

// GC returns the fraction of valid nucleotides that are G or C, and the
// number of valid nucleotides considered. A sequence with no valid
// nucleotides reports GC of 0.
func GC(codes []Code) (frac float64, valid int) {
	gc := 0
	for _, c := range codes {
		switch c {
		case G, C:
			gc++
			valid++
		case A, T:
			valid++
		}
	}
	if valid == 0 {
		return 0, 0
	}
	return float64(gc) / float64(valid), valid
}
