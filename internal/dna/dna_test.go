package dna

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeByteKnownValues(t *testing.T) {
	cases := []struct {
		in   byte
		want Code
	}{
		{'A', 0}, {'C', 1}, {'T', 2}, {'G', 3},
		{'a', 0}, {'c', 1}, {'t', 2}, {'g', 3},
		{'U', 2}, {'u', 2},
	}
	for _, c := range cases {
		if got := EncodeByte(c.in); got != c.want {
			t.Errorf("EncodeByte(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestEncodeByteInvalid(t *testing.T) {
	for _, b := range []byte{'N', 'n', 'X', '-', ' ', '\n', 0, 255, 'R', 'Y'} {
		if got := EncodeByte(b); got != Invalid {
			t.Errorf("EncodeByte(%q) = %#x, want Invalid", b, got)
		}
	}
}

func TestPaperEncodingOrder(t *testing.T) {
	// The paper's table: A=00, C=01, T=10, G=11. The seed-order proofs
	// rely on this exact mapping, so pin it.
	if A != 0 || C != 1 || T != 2 || G != 3 {
		t.Fatalf("encoding drifted from the paper: A=%d C=%d T=%d G=%d", A, C, T, G)
	}
}

func TestDecodeByteRoundTrip(t *testing.T) {
	for c := Code(0); c < Alphabet; c++ {
		b := DecodeByte(c)
		if EncodeByte(b) != c {
			t.Errorf("round trip failed for code %d (ascii %q)", c, b)
		}
	}
}

func TestDecodeBytePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DecodeByte(Invalid) did not panic")
		}
	}()
	DecodeByte(Invalid)
}

func TestComplementPairs(t *testing.T) {
	pairs := map[Code]Code{A: T, T: A, C: G, G: C}
	for c, want := range pairs {
		if got := Complement(c); got != want {
			t.Errorf("Complement(%c) = %c, want %c", DecodeByte(c), DecodeByte(got), DecodeByte(want))
		}
	}
}

func TestComplementIsInvolution(t *testing.T) {
	for c := Code(0); c < Alphabet; c++ {
		if Complement(Complement(c)) != c {
			t.Errorf("Complement not an involution at %d", c)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := []byte("ACGTACGTTTGGCCAA")
	codes := Encode(in)
	out := Decode(codes)
	if !bytes.Equal(in, out) {
		t.Errorf("round trip: got %q want %q", out, in)
	}
}

func TestDecodeInvalidToN(t *testing.T) {
	codes := Encode([]byte("ACNNGT"))
	out := Decode(codes)
	if string(out) != "ACNNGT" {
		t.Errorf("got %q want ACNNGT", out)
	}
}

func TestEncodeInto(t *testing.T) {
	dst := make([]Code, 8)
	n := EncodeInto(dst, []byte("ACGT"))
	if n != 4 {
		t.Fatalf("EncodeInto returned %d, want 4", n)
	}
	want := []Code{A, C, G, T}
	for i, w := range want {
		if dst[i] != w {
			t.Errorf("dst[%d] = %d, want %d", i, dst[i], w)
		}
	}
}

func TestReverseComplementKnown(t *testing.T) {
	cases := []struct{ in, want string }{
		{"A", "T"},
		{"AC", "GT"},
		{"ACGT", "ACGT"}, // palindrome
		{"AAAA", "TTTT"},
		{"GATTACA", "TGTAATC"},
	}
	for _, c := range cases {
		got := string(Decode(ReverseComplement(Encode([]byte(c.in)))))
		if got != c.want {
			t.Errorf("RC(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestReverseComplementPreservesInvalidPositions(t *testing.T) {
	in := Encode([]byte("ANG"))
	out := ReverseComplement(in)
	// reverse of (A, N, G) complemented = (C, N, T)
	if out[0] != C || out[1] != Invalid || out[2] != T {
		t.Errorf("got %v", out)
	}
}

func TestReverseComplementInPlaceMatchesCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(33)
		s := make([]Code, n)
		for i := range s {
			s[i] = Code(rng.Intn(4))
		}
		want := ReverseComplement(s)
		got := append([]Code(nil), s...)
		ReverseComplementInPlace(got)
		if !bytes.Equal(want, got) {
			t.Fatalf("n=%d: in-place %v != copy %v", n, got, want)
		}
	}
}

func TestReverseComplementInvolutionProperty(t *testing.T) {
	f := func(raw []byte) bool {
		s := make([]Code, len(raw))
		for i, b := range raw {
			s[i] = Code(b % 4)
		}
		back := ReverseComplement(ReverseComplement(s))
		return bytes.Equal(s, back)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeQuickRoundTrip(t *testing.T) {
	letters := []byte("ACGT")
	f := func(raw []byte) bool {
		ascii := make([]byte, len(raw))
		for i, b := range raw {
			ascii[i] = letters[b%4]
		}
		return bytes.Equal(Decode(Encode(ascii)), ascii)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCountValid(t *testing.T) {
	if got := CountValid(Encode([]byte("ACNNGTN"))); got != 4 {
		t.Errorf("CountValid = %d, want 4", got)
	}
	if got := CountValid(nil); got != 0 {
		t.Errorf("CountValid(nil) = %d, want 0", got)
	}
}

func TestGC(t *testing.T) {
	frac, valid := GC(Encode([]byte("GGCCAATT")))
	if valid != 8 || frac != 0.5 {
		t.Errorf("GC = %v,%v want 0.5,8", frac, valid)
	}
	frac, valid = GC(Encode([]byte("NNN")))
	if valid != 0 || frac != 0 {
		t.Errorf("GC of all-N = %v,%v want 0,0", frac, valid)
	}
	frac, valid = GC(Encode([]byte("GC")))
	if valid != 2 || frac != 1.0 {
		t.Errorf("GC = %v,%v want 1,2", frac, valid)
	}
}

func TestInvalidDistinctFromCodesAndSentinels(t *testing.T) {
	// Bank sentinels use 0xF0..0xFD; Invalid must not collide with them
	// or with any real code.
	if Invalid < Alphabet {
		t.Fatal("Invalid collides with a nucleotide code")
	}
	if Invalid >= 0xF0 {
		t.Fatal("Invalid collides with the bank sentinel range")
	}
}

func BenchmarkEncode1K(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ascii := make([]byte, 1024)
	letters := []byte("ACGT")
	for i := range ascii {
		ascii[i] = letters[rng.Intn(4)]
	}
	dst := make([]Code, len(ascii))
	b.SetBytes(int64(len(ascii)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeInto(dst, ascii)
	}
}
