// Package seed implements the W-nt seed coding of the ORIS algorithm
// (paper §2.1):
//
//	codeSEED(S) = Σ_{i<W} 4^i · codeNT(S_i)
//
// The first (leftmost) character of the seed is the least-significant
// digit. Together with the paper's nucleotide codes this defines the
// total order in which step 2 enumerates all 4^W seeds; the ordered
// abort rule of package hsp compares these codes.
//
// The package provides O(1) rolling updates in both directions so that
// scanning a bank forward (index construction, BLAST subject scan) and
// walking leftward during extension (the abort-rule check) never
// recompute a code from scratch.
package seed

import (
	"fmt"

	"repro/internal/dna"
)

// Code is a packed seed code. W ≤ 15 fits in 30 bits.
type Code uint32

// MaxW is the largest supported seed length. 4^15 dictionary entries
// (1 Gi) would be impractical anyway; the paper uses W=11 and W=10.
const MaxW = 15

// NumCodes returns 4^w, the size of the seed dictionary.
func NumCodes(w int) int {
	if w < 1 || w > MaxW {
		panic(fmt.Sprintf("seed: unsupported W=%d", w))
	}
	return 1 << (2 * uint(w))
}

// Encode computes codeSEED over codes[0:w]. ok is false if the window
// contains a non-nucleotide byte or is too short.
func Encode(codes []byte, w int) (c Code, ok bool) {
	if len(codes) < w {
		return 0, false
	}
	for i := w - 1; i >= 0; i-- {
		b := codes[i]
		if !dna.IsValid(b) {
			return 0, false
		}
		c = c<<2 | Code(b)
	}
	return c, true
}

// Decode expands a code back into w nucleotide codes.
func Decode(c Code, w int) []byte {
	out := make([]byte, w)
	for i := 0; i < w; i++ {
		out[i] = byte(c & 3)
		c >>= 2
	}
	return out
}

// String renders a code as ASCII bases for diagnostics.
func String(c Code, w int) string {
	return string(dna.Decode(Decode(c, w)))
}

// RollRight slides a window one position right: the old first base
// (least-significant digit) leaves, incoming becomes the new last base.
func RollRight(c Code, incoming byte, w int) Code {
	return (c >> 2) | Code(incoming)<<(2*uint(w-1))
}

// RollLeft slides a window one position left: outgoing is the old last
// base (most-significant digit), incoming becomes the new first base.
func RollLeft(c Code, incoming, outgoing byte, w int) Code {
	return (c-Code(outgoing)<<(2*uint(w-1)))<<2 | Code(incoming)
}

// ForEach calls fn(pos, code) for every position pos in data where a
// valid (sentinel- and ambiguity-free) W-window *starts*, in increasing
// position order. It is the single scanning primitive shared by the
// ORIS indexer and the BLASTN subject scan.
//
// The implementation rolls the code and tracks the length of the
// current run of valid bases; a window is valid when the run ending at
// its last base is at least w long.
func ForEach(data []byte, w int, fn func(pos int32, c Code)) {
	var c Code
	run := 0
	for i := 0; i < len(data); i++ {
		b := data[i]
		if !dna.IsValid(b) {
			run = 0
			continue
		}
		c = RollRight(c, b, w)
		run++
		if run >= w {
			fn(int32(i-w+1), c)
		}
	}
}

// Count returns how many valid seed windows of length w data contains.
func Count(data []byte, w int) int {
	n := 0
	ForEach(data, w, func(int32, Code) { n++ })
	return n
}

// Compare orders two codes as the paper does: the seed with the smaller
// integer code is "lower" and is enumerated first by step 2.
func Compare(a, b Code) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
