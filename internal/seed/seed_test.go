package seed

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/dna"
)

func enc(s string) []byte { return dna.Encode([]byte(s)) }

func TestEncodePaperFormula(t *testing.T) {
	// codeSEED(S) = sum 4^i * codeNT(S_i), S_0 least significant.
	// "CA" -> C=1 at i=0, A=0 at i=1 -> 1.
	c, ok := Encode(enc("CA"), 2)
	if !ok || c != 1 {
		t.Errorf("CA: got %d,%v want 1,true", c, ok)
	}
	// "AC" -> A=0 + 4*C=4.
	c, ok = Encode(enc("AC"), 2)
	if !ok || c != 4 {
		t.Errorf("AC: got %d,%v want 4,true", c, ok)
	}
	// "GT" -> G=3 + 4*T(2)=8 -> 11.
	c, ok = Encode(enc("GT"), 2)
	if !ok || c != 11 {
		t.Errorf("GT: got %d,%v want 11,true", c, ok)
	}
}

func TestEncodeAAAisZeroAndGGGisMax(t *testing.T) {
	c, _ := Encode(enc("AAAA"), 4)
	if c != 0 {
		t.Errorf("AAAA = %d, want 0 (lowest seed)", c)
	}
	c, _ = Encode(enc("GGGG"), 4)
	if int(c) != NumCodes(4)-1 {
		t.Errorf("GGGG = %d, want %d (highest seed)", c, NumCodes(4)-1)
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	if _, ok := Encode(enc("ACNT"), 4); ok {
		t.Error("window with N should not encode")
	}
	if _, ok := Encode(enc("AC"), 4); ok {
		t.Error("short window should not encode")
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	for w := 1; w <= 12; w += 3 {
		rng := rand.New(rand.NewSource(int64(w)))
		for trial := 0; trial < 50; trial++ {
			c := Code(rng.Intn(NumCodes(w)))
			got, ok := Encode(Decode(c, w), w)
			if !ok || got != c {
				t.Fatalf("w=%d c=%d: round trip got %d,%v", w, c, got, ok)
			}
		}
	}
}

func TestStringRendering(t *testing.T) {
	c, _ := Encode(enc("ACGT"), 4)
	if s := String(c, 4); s != "ACGT" {
		t.Errorf("String = %q", s)
	}
}

func TestNumCodes(t *testing.T) {
	if NumCodes(1) != 4 || NumCodes(2) != 16 || NumCodes(11) != 4194304 {
		t.Errorf("NumCodes wrong: %d %d %d", NumCodes(1), NumCodes(2), NumCodes(11))
	}
}

func TestNumCodesPanicsOutOfRange(t *testing.T) {
	for _, w := range []int{0, -1, MaxW + 1} {
		func() {
			defer func() { recover() }()
			NumCodes(w)
			t.Errorf("NumCodes(%d) did not panic", w)
		}()
	}
}

func TestRollRightMatchesEncode(t *testing.T) {
	const w = 5
	rng := rand.New(rand.NewSource(9))
	data := make([]byte, 200)
	for i := range data {
		data[i] = byte(rng.Intn(4))
	}
	c, ok := Encode(data, w)
	if !ok {
		t.Fatal("encode failed")
	}
	for p := 1; p+w <= len(data); p++ {
		c = RollRight(c, data[p+w-1], w)
		want, _ := Encode(data[p:], w)
		if c != want {
			t.Fatalf("pos %d: rolled %d, direct %d", p, c, want)
		}
	}
}

func TestRollLeftMatchesEncode(t *testing.T) {
	const w = 7
	rng := rand.New(rand.NewSource(10))
	data := make([]byte, 150)
	for i := range data {
		data[i] = byte(rng.Intn(4))
	}
	start := len(data) - w
	c, _ := Encode(data[start:], w)
	for p := start - 1; p >= 0; p-- {
		c = RollLeft(c, data[p], data[p+w], w)
		want, _ := Encode(data[p:], w)
		if c != want {
			t.Fatalf("pos %d: rolled %d, direct %d", p, c, want)
		}
	}
}

func TestRollInverseProperty(t *testing.T) {
	f := func(raw []byte, wRaw uint8) bool {
		w := 2 + int(wRaw)%10
		if len(raw) < w+1 {
			return true
		}
		data := make([]byte, len(raw))
		for i, b := range raw {
			data[i] = b % 4
		}
		c0, _ := Encode(data, w)
		// roll right then left must restore the code
		c1 := RollRight(c0, data[w], w)
		back := RollLeft(c1, data[0], data[w], w)
		return back == c0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestForEachOnCleanData(t *testing.T) {
	data := enc("ACGTACG")
	var pos []int32
	var codes []Code
	ForEach(data, 4, func(p int32, c Code) {
		pos = append(pos, p)
		codes = append(codes, c)
	})
	if !reflect.DeepEqual(pos, []int32{0, 1, 2, 3}) {
		t.Fatalf("positions = %v", pos)
	}
	for i, p := range pos {
		want, _ := Encode(data[p:], 4)
		if codes[i] != want {
			t.Errorf("pos %d: code %d want %d", p, codes[i], want)
		}
	}
}

func TestForEachSkipsInvalidWindows(t *testing.T) {
	data := enc("ACGTNACGT")
	var pos []int32
	ForEach(data, 4, func(p int32, c Code) { pos = append(pos, p) })
	// valid windows: 0 (ACGT) and 5 (ACGT); windows 1..4 touch the N.
	if !reflect.DeepEqual(pos, []int32{0, 5}) {
		t.Fatalf("positions = %v", pos)
	}
}

func TestForEachSkipsSentinels(t *testing.T) {
	data := append(enc("ACG"), 0xF0)
	data = append(data, enc("TACG")...)
	var pos []int32
	ForEach(data, 3, func(p int32, c Code) { pos = append(pos, p) })
	if !reflect.DeepEqual(pos, []int32{0, 4, 5}) {
		t.Fatalf("positions = %v", pos)
	}
}

func TestForEachShortData(t *testing.T) {
	if n := Count(enc("ACG"), 4); n != 0 {
		t.Errorf("Count on short data = %d", n)
	}
	if n := Count(nil, 4); n != 0 {
		t.Errorf("Count on nil = %d", n)
	}
}

func TestForEachMatchesNaiveEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	letters := []byte("ACGTN")
	for trial := 0; trial < 40; trial++ {
		w := 2 + rng.Intn(6)
		n := rng.Intn(120)
		ascii := make([]byte, n)
		for i := range ascii {
			ascii[i] = letters[rng.Intn(len(letters))]
		}
		data := dna.Encode(ascii)
		type pc struct {
			p int32
			c Code
		}
		var got []pc
		ForEach(data, w, func(p int32, c Code) { got = append(got, pc{p, c}) })
		var want []pc
		for p := 0; p+w <= n; p++ {
			if c, ok := Encode(data[p:], w); ok {
				want = append(want, pc{int32(p), c})
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (w=%d): got %v want %v", trial, w, got, want)
		}
	}
}

func TestCompare(t *testing.T) {
	if Compare(1, 2) != -1 || Compare(2, 1) != 1 || Compare(5, 5) != 0 {
		t.Error("Compare misordered")
	}
}

// Seed order property from the paper: S_A < S_B iff codeSEED(S_A) <
// codeSEED(S_B), and the order is total over all 4^w seeds.
func TestSeedOrderIsTotal(t *testing.T) {
	const w = 3
	seen := make(map[Code]bool)
	for c := 0; c < NumCodes(w); c++ {
		code, ok := Encode(Decode(Code(c), w), w)
		if !ok || seen[code] {
			t.Fatalf("code %d: duplicate or invalid", c)
		}
		seen[code] = true
	}
	if len(seen) != NumCodes(w) {
		t.Fatalf("only %d distinct codes", len(seen))
	}
}

func BenchmarkForEachW11(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(rng.Intn(4))
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		ForEach(data, 11, func(p int32, c Code) { sink += int(c) })
	}
	_ = sink
}
