package tabular

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomRecord derives a plausible m8 record from fuzz input.
func randomRecord(seed int64) Record {
	rng := rand.New(rand.NewSource(seed))
	l := 20 + rng.Intn(2000)
	qs := 1 + rng.Intn(5000)
	ss := 1 + rng.Intn(5000)
	return Record{
		Query:      "q" + string(rune('a'+rng.Intn(26))),
		Subject:    "s" + string(rune('a'+rng.Intn(26))),
		PIdent:     50 + 50*rng.Float64(),
		Length:     l,
		Mismatches: rng.Intn(l / 2),
		GapOpens:   rng.Intn(5),
		QStart:     qs, QEnd: qs + l - 1,
		SStart: ss, SEnd: ss + l - 1,
		EValue:   math.Pow(10, -float64(rng.Intn(100))),
		BitScore: 20 + 500*rng.Float64(),
	}
}

// Property: String/Parse round-trips every field (floats within the
// formatter's precision).
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		in := randomRecord(seed)
		out, err := Parse(in.String())
		if err != nil {
			return false
		}
		if out.Query != in.Query || out.Subject != in.Subject ||
			out.Length != in.Length || out.Mismatches != in.Mismatches ||
			out.GapOpens != in.GapOpens || out.QStart != in.QStart ||
			out.QEnd != in.QEnd || out.SStart != in.SStart || out.SEnd != in.SEnd {
			return false
		}
		if math.Abs(out.PIdent-in.PIdent) > 0.005+1e-9 {
			return false
		}
		if in.EValue > 0 && math.Abs(out.EValue-in.EValue)/in.EValue > 0.01 {
			return false
		}
		return math.Abs(out.BitScore-in.BitScore) <= 0.05+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Write/Read round-trips arbitrary-length record lists.
func TestQuickWriteReadRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw) % 50
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = randomRecord(seed + int64(i))
		}
		var buf bytes.Buffer
		if err := Write(&buf, recs); err != nil {
			return false
		}
		out, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(out) != n {
			return false
		}
		for i := range out {
			if out[i].Query != recs[i].Query || out[i].Length != recs[i].Length {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
