// Package tabular reads and writes the BLAST "-m 8" tabular alignment
// format, the output format of both SCORIS-N and the BLASTN baseline
// (paper §3.1: "It only displays the alignment features as it is done
// in the -m 8 option of BLASTN"). One line per alignment:
//
//	query subject %identity length mismatches gapopens qstart qend sstart send evalue bitscore
//
// Coordinates are 1-based and inclusive, matching BLAST.
package tabular

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/align"
	"repro/internal/bank"
)

// Record is one m8 line.
type Record struct {
	Query, Subject string
	PIdent         float64
	Length         int
	Mismatches     int
	GapOpens       int
	QStart, QEnd   int
	SStart, SEnd   int
	EValue         float64
	BitScore       float64
}

// FromAlignment converts an internal alignment into an m8 record. By
// the conventions of the paper's experiments (blastall -d A -i B),
// bank 1 is the subject database and bank 2 holds the queries.
func FromAlignment(a *align.Alignment, bank1, bank2 *bank.Bank) Record {
	_, sOff := bank1.Coord(a.S1)
	_, qOff := bank2.Coord(a.S2)
	r := Record{
		Query:      bank2.SeqID(int(a.Seq2)),
		Subject:    bank1.SeqID(int(a.Seq1)),
		PIdent:     100 * a.Identity(),
		Length:     int(a.Length),
		Mismatches: int(a.Mismatches),
		GapOpens:   int(a.GapOpens),
		QStart:     int(qOff) + 1,
		QEnd:       int(qOff) + int(a.E2-a.S2),
		SStart:     int(sOff) + 1,
		SEnd:       int(sOff) + int(a.E1-a.S1),
		EValue:     a.EValue,
		BitScore:   a.BitScore,
	}
	if a.Minus {
		// BLAST convention: a minus-strand hit swaps the query
		// coordinates so start > end.
		r.QStart, r.QEnd = r.QEnd, r.QStart
	}
	return r
}

// String renders the record as one m8 line (no trailing newline).
func (r Record) String() string {
	return fmt.Sprintf("%s\t%s\t%.2f\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\t%.1f",
		r.Query, r.Subject, r.PIdent, r.Length, r.Mismatches, r.GapOpens,
		r.QStart, r.QEnd, r.SStart, r.SEnd, formatEValue(r.EValue), r.BitScore)
}

// formatEValue imitates BLAST's e-value rendering closely enough for
// round-tripping: small values in scientific notation, moderate ones in
// short decimal.
func formatEValue(e float64) string {
	switch {
	case e == 0:
		return "0.0"
	case e < 1e-99:
		return strconv.FormatFloat(e, 'e', 2, 64)
	case e < 0.001:
		return strconv.FormatFloat(e, 'e', 2, 64)
	default:
		return strconv.FormatFloat(e, 'f', 3, 64)
	}
}

// AppendGroup renders one query sequence's alignments as m8 lines onto
// dst and returns the extended slice. It is the streaming counterpart
// of Write over FromAlignment: concatenating the groups of every bank-2
// sequence in bank order yields bytes identical to the buffered report,
// because display order is query-major (align.SortForDisplay).
func AppendGroup(dst []byte, alignments []align.Alignment, bank1, bank2 *bank.Bank) []byte {
	for i := range alignments {
		r := FromAlignment(&alignments[i], bank1, bank2)
		dst = append(dst, r.String()...)
		dst = append(dst, '\n')
	}
	return dst
}

// StreamWriter emits m8 output one query-sequence group at a time:
// each WriteGroup call renders the group and hands the underlying
// writer exactly one Write, so a flushing consumer (chunked HTTP, a
// pipe) sees a finished query's lines immediately instead of after the
// whole compare.
type StreamWriter struct {
	w            io.Writer
	bank1, bank2 *bank.Bank
	buf          []byte
	n            int64
}

// NewStreamWriter returns a StreamWriter rendering alignments between
// bank1 (subjects) and bank2 (queries) onto w.
func NewStreamWriter(w io.Writer, bank1, bank2 *bank.Bank) *StreamWriter {
	return &StreamWriter{w: w, bank1: bank1, bank2: bank2}
}

// WriteGroup renders one query sequence's alignments and writes them.
// An empty group writes nothing and is not an error.
func (sw *StreamWriter) WriteGroup(alignments []align.Alignment) error {
	if len(alignments) == 0 {
		return nil
	}
	sw.buf = AppendGroup(sw.buf[:0], alignments, sw.bank1, sw.bank2)
	m, err := sw.w.Write(sw.buf)
	sw.n += int64(m)
	return err
}

// BytesWritten reports the total m8 bytes written so far.
func (sw *StreamWriter) BytesWritten() int64 { return sw.n }

// Parse parses one m8 line.
func Parse(line string) (Record, error) {
	f := strings.Fields(line)
	if len(f) != 12 {
		return Record{}, fmt.Errorf("tabular: %d fields, want 12: %q", len(f), line)
	}
	var r Record
	r.Query, r.Subject = f[0], f[1]
	var err error
	parseF := func(s string, dst *float64) {
		if err == nil {
			*dst, err = strconv.ParseFloat(s, 64)
		}
	}
	parseI := func(s string, dst *int) {
		if err == nil {
			*dst, err = strconv.Atoi(s)
		}
	}
	parseF(f[2], &r.PIdent)
	parseI(f[3], &r.Length)
	parseI(f[4], &r.Mismatches)
	parseI(f[5], &r.GapOpens)
	parseI(f[6], &r.QStart)
	parseI(f[7], &r.QEnd)
	parseI(f[8], &r.SStart)
	parseI(f[9], &r.SEnd)
	parseF(f[10], &r.EValue)
	parseF(f[11], &r.BitScore)
	if err != nil {
		return Record{}, fmt.Errorf("tabular: %q: %w", line, err)
	}
	return r, nil
}

// Write emits records, one per line.
func Write(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for i := range recs {
		if _, err := bw.WriteString(recs[i].String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses all records from a reader, skipping blank and comment
// ('#') lines.
func Read(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var out []Record
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := Parse(line)
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
	return out, sc.Err()
}

// WriteFile writes records to a file.
func WriteFile(path string, recs []Record) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return Write(f, recs)
}

// ReadFile reads all records from a file.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
