package tabular

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/align"
	"repro/internal/bank"
	"repro/internal/fasta"
)

func sampleRecord() Record {
	return Record{
		Query: "q1", Subject: "s1",
		PIdent: 97.50, Length: 200, Mismatches: 5, GapOpens: 1,
		QStart: 1, QEnd: 200, SStart: 301, SEnd: 500,
		EValue: 1.25e-57, BitScore: 370.1,
	}
}

func TestStringFieldCount(t *testing.T) {
	line := sampleRecord().String()
	if n := len(strings.Split(line, "\t")); n != 12 {
		t.Fatalf("m8 line has %d fields, want 12: %q", n, line)
	}
}

func TestParseRoundTrip(t *testing.T) {
	in := sampleRecord()
	out, err := Parse(in.String())
	if err != nil {
		t.Fatal(err)
	}
	if out.Query != in.Query || out.Subject != in.Subject ||
		out.Length != in.Length || out.Mismatches != in.Mismatches ||
		out.GapOpens != in.GapOpens || out.QStart != in.QStart ||
		out.QEnd != in.QEnd || out.SStart != in.SStart || out.SEnd != in.SEnd {
		t.Errorf("round trip: %+v vs %+v", out, in)
	}
	if math.Abs(out.PIdent-in.PIdent) > 0.01 {
		t.Errorf("PIdent %v vs %v", out.PIdent, in.PIdent)
	}
	if math.Abs(out.EValue-in.EValue)/in.EValue > 0.02 {
		t.Errorf("EValue %v vs %v", out.EValue, in.EValue)
	}
	if math.Abs(out.BitScore-in.BitScore) > 0.1 {
		t.Errorf("BitScore %v vs %v", out.BitScore, in.BitScore)
	}
}

func TestParseRejectsBadLines(t *testing.T) {
	bad := []string{
		"",
		"only three fields here",
		"q s 1 2 3 4 5 6 7 8 9",                  // 11 fields
		"q s x 200 5 1 1 200 301 500 1e-5 370.1", // non-numeric pident
		"q s 97.5 x 5 1 1 200 301 500 1e-5 370.1", // non-numeric length
		"q s 97.5 200 5 1 1 200 301 500 zz 370.1", // non-numeric evalue
	}
	for _, line := range bad {
		if _, err := Parse(line); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", line)
		}
	}
}

func TestEValueFormatting(t *testing.T) {
	cases := []struct {
		e    float64
		want string
	}{
		{0, "0.0"},
		{1e-120, "1.00e-120"},
		{2.5e-8, "2.50e-08"},
		{0.0012, "0.001"},
		{0.5, "0.500"},
		{3, "3.000"},
	}
	for _, c := range cases {
		if got := formatEValue(c.e); got != c.want {
			t.Errorf("formatEValue(%g) = %q, want %q", c.e, got, c.want)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	recs := []Record{sampleRecord(), sampleRecord()}
	recs[1].Query = "q2"
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Query != "q1" || out[1].Query != "q2" {
		t.Errorf("round trip: %+v", out)
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n" + sampleRecord().String() + "\n\n# trailing\n"
	out, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Errorf("got %d records", len(out))
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hits.m8")
	if err := WriteFile(path, []Record{sampleRecord()}); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Subject != "s1" {
		t.Errorf("file round trip: %+v", out)
	}
}

func TestFromAlignmentCoordinates(t *testing.T) {
	b1 := bank.New("db", []*fasta.Record{
		{ID: "subj1", Seq: []byte("ACGTACGTACGTACGTACGT")},
		{ID: "subj2", Seq: []byte("TTTTTTTTTT")},
	})
	b2 := bank.New("qry", []*fasta.Record{
		{ID: "query1", Seq: []byte("ACGTACGTACGTACGT")},
	})
	// Alignment over subj2[2:8] vs query1[4:10].
	s2start, _ := b1.SeqBounds(1)
	q1start, _ := b2.SeqBounds(0)
	a := align.Alignment{
		Seq1: 1, Seq2: 0,
		S1: s2start + 2, E1: s2start + 8,
		S2: q1start + 4, E2: q1start + 10,
		Score: 6, Matches: 6, Length: 6,
		EValue: 1e-4, BitScore: 12.3,
	}
	r := FromAlignment(&a, b1, b2)
	if r.Query != "query1" || r.Subject != "subj2" {
		t.Errorf("names: %+v", r)
	}
	// 1-based inclusive coordinates.
	if r.SStart != 3 || r.SEnd != 8 || r.QStart != 5 || r.QEnd != 10 {
		t.Errorf("coords: %+v", r)
	}
	if r.PIdent != 100 || r.Length != 6 {
		t.Errorf("stats: %+v", r)
	}
}
