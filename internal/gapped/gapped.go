// Package gapped implements gapped alignment extension by dynamic
// programming with an X-drop bound (paper §2.3): "alignments are
// constructed starting from the middle of an HSP and performing an
// extension on both extremities by dynamic programming techniques. The
// extension is controlled by an XDROP value… The final alignment
// consists in merging the right and left gapped extensions."
//
// The DP is the classic adaptive-band affine-gap X-drop extension
// (Zhang/Altschul, as in NCBI ALIGN_EX): rows advance along the first
// sequence, live columns are those within XDrop of the best score seen,
// and the band grows and shrinks as scores evolve. A per-cell traceback
// band is kept so the caller gets exact match/mismatch/gap-open/
// gap-base counts — the quantities the m8 output format reports.
// Direct gap-to-gap state switches (Ix↔Iy) are disallowed, as in NCBI.
package gapped

import "repro/internal/stats"

// Params controls the extension.
type Params struct {
	// Match reward, Mismatch/GapOpen/GapExtend penalties, all positive.
	Match, Mismatch, GapOpen, GapExtend int32
	// XDrop prunes cells scoring more than XDrop below the running best.
	XDrop int32
}

// FromScoring converts a stats.Scoring plus X-drop into Params.
func FromScoring(s stats.Scoring, xdrop int32) Params {
	return Params{
		Match:     int32(s.Match),
		Mismatch:  int32(s.Mismatch),
		GapOpen:   int32(s.GapOpen),
		GapExtend: int32(s.GapExtend),
		XDrop:     xdrop,
	}
}

// Result describes one extension arm (or a merged pair). The optimal
// path ends Len1 bases into sequence 1 and Len2 bases into sequence 2.
type Result struct {
	Score      int32
	Len1, Len2 int32
	Matches    int32
	Mismatches int32
	GapOpens   int32
	// GapBases1 counts gap columns consuming sequence-1 bases (gaps in
	// sequence 2); GapBases2 the converse.
	GapBases1, GapBases2 int32
}

// AlignLen is the alignment length including gap columns, the "length"
// column of m8 output.
func (r Result) AlignLen() int32 {
	return r.Matches + r.Mismatches + r.GapBases1 + r.GapBases2
}

// GapBases returns the total gap columns.
func (r Result) GapBases() int32 { return r.GapBases1 + r.GapBases2 }

// Identity returns the fraction of alignment columns that are matches.
func (r Result) Identity() float64 {
	if l := r.AlignLen(); l > 0 {
		return float64(r.Matches) / float64(l)
	}
	return 0
}

// Add merges two arms that share only the anchor point.
func (r Result) Add(o Result) Result {
	return Result{
		Score:      r.Score + o.Score,
		Len1:       r.Len1 + o.Len1,
		Len2:       r.Len2 + o.Len2,
		Matches:    r.Matches + o.Matches,
		Mismatches: r.Mismatches + o.Mismatches,
		GapOpens:   r.GapOpens + o.GapOpens,
		GapBases1:  r.GapBases1 + o.GapBases1,
		GapBases2:  r.GapBases2 + o.GapBases2,
	}
}

const negInf = int32(-1 << 29)

// Affine DP states.
const (
	stM  = 0 // match/mismatch
	stIx = 1 // gap in sequence 2 (consumes sequence 1)
	stIy = 2 // gap in sequence 1 (consumes sequence 2)
)

// Traceback bit layout per cell (one byte):
//
//	bits 0-1: predecessor state of M   (stM, stIx, stIy)
//	bit  2:   predecessor of Ix is Ix  (else M)
//	bit  3:   predecessor of Iy is Iy  (else M)
const (
	tbIxExt = 1 << 2
	tbIyExt = 1 << 3
)

// row stores one DP row's traceback band.
type row struct {
	lo   int32  // column of dirs[0]
	dirs []byte // traceback bytes for columns lo..lo+len(dirs)-1
}

// arena hands out zeroed byte slices from fixed chunks, so row slices
// remain valid for the lifetime of one extension without per-row
// allocation.
type arena struct {
	chunks [][]byte
	cur    int
	off    int
}

func (a *arena) reset() {
	a.cur, a.off = 0, 0
	if len(a.chunks) == 0 {
		a.chunks = [][]byte{make([]byte, 1<<16)}
	}
}

func (a *arena) alloc(n int) []byte {
	for {
		c := a.chunks[a.cur]
		if a.off+n <= len(c) {
			s := c[a.off : a.off+n]
			a.off += n
			for i := range s {
				s[i] = 0
			}
			return s
		}
		a.cur++
		a.off = 0
		if a.cur == len(a.chunks) {
			size := 1 << 16
			if n > size {
				size = n
			}
			a.chunks = append(a.chunks, make([]byte, size))
		}
	}
}

// Extender runs extensions, reusing scratch buffers across calls. Not
// safe for concurrent use; each worker goroutine owns one.
type Extender struct {
	prm Params

	m, ix, iy    []int32
	nm, nix, niy []int32
	rows         []row
	tb           arena
	scratch      []byte

	collectOps bool
	ops        []byte
}

// Edit-path operation codes produced by the *Path methods.
const (
	// OpPair aligns one base of each sequence (match or mismatch).
	OpPair byte = 'P'
	// OpGap1 consumes a sequence-1 base against a gap in sequence 2.
	OpGap1 byte = '1'
	// OpGap2 consumes a sequence-2 base against a gap in sequence 1.
	OpGap2 byte = '2'
)

// NewExtender returns an extender with the given parameters. It panics
// on parameters that would break the DP (non-positive gap extension).
func NewExtender(prm Params) *Extender {
	if prm.GapExtend <= 0 || prm.Match <= 0 || prm.Mismatch <= 0 || prm.GapOpen < 0 || prm.XDrop <= 0 {
		panic("gapped: invalid params")
	}
	return &Extender{prm: prm}
}

// Params returns the extension parameters.
func (e *Extender) Params() Params { return e.prm }

// ExtendRight extends from the anchor point rightwards: the first
// aligned pair is (d1[p1], d2[p2]), and the extension may consume up to
// hi1-p1 and hi2-p2 bases. The anchor contributes score 0.
func (e *Extender) ExtendRight(d1, d2 []byte, p1, hi1, p2, hi2 int32) Result {
	return e.extend(d1, d2, p1-1, p2-1, +1, hi1-p1, hi2-p2)
}

// ExtendLeft extends leftwards: the first aligned pair is
// (d1[p1-1], d2[p2-1]), consuming up to p1-lo1 and p2-lo2 bases.
func (e *Extender) ExtendLeft(d1, d2 []byte, p1, lo1, p2, lo2 int32) Result {
	return e.extend(d1, d2, p1, p2, -1, p1-lo1, p2-lo2)
}

// ExtendBoth runs both arms around the anchor (m1, m2) and merges them,
// following the paper's "middle of the HSP" seeding. The right arm
// consumes (m1, m2) itself.
func (e *Extender) ExtendBoth(d1, d2 []byte, m1, m2, lo1, hi1, lo2, hi2 int32) Result {
	left := e.ExtendLeft(d1, d2, m1, lo1, m2, lo2)
	right := e.ExtendRight(d1, d2, m1, hi1, m2, hi2)
	return left.Add(right)
}

// ExtendRightPath is ExtendRight additionally returning the edit path
// in left-to-right order (OpPair/OpGap1/OpGap2 per column). The slice
// is freshly allocated and owned by the caller.
func (e *Extender) ExtendRightPath(d1, d2 []byte, p1, hi1, p2, hi2 int32) (Result, []byte) {
	e.collectOps = true
	r := e.ExtendRight(d1, d2, p1, hi1, p2, hi2)
	e.collectOps = false
	// Traceback walks end→anchor; right-arm display order is
	// anchor→end, so reverse.
	ops := append([]byte(nil), e.ops...)
	for i, j := 0, len(ops)-1; i < j; i, j = i+1, j-1 {
		ops[i], ops[j] = ops[j], ops[i]
	}
	return r, ops
}

// ExtendLeftPath is ExtendLeft with the edit path in left-to-right
// order (traceback order is already leftmost→anchor for the left arm).
func (e *Extender) ExtendLeftPath(d1, d2 []byte, p1, lo1, p2, lo2 int32) (Result, []byte) {
	e.collectOps = true
	r := e.ExtendLeft(d1, d2, p1, lo1, p2, lo2)
	e.collectOps = false
	return r, append([]byte(nil), e.ops...)
}

// ExtendBothPath merges the arms and their paths around the anchor.
func (e *Extender) ExtendBothPath(d1, d2 []byte, m1, m2, lo1, hi1, lo2, hi2 int32) (Result, []byte) {
	left, lops := e.ExtendLeftPath(d1, d2, m1, lo1, m2, lo2)
	right, rops := e.ExtendRightPath(d1, d2, m1, hi1, m2, hi2)
	return left.Add(right), append(lops, rops...)
}

// extend is the core banded X-drop DP. The i-th consumed base of
// sequence 1 is d1[base1+sign*i] (i ≥ 1), likewise for sequence 2;
// n1, n2 bound the consumable bases.
func (e *Extender) extend(d1, d2 []byte, base1, base2, sign, n1, n2 int32) Result {
	prm := e.prm
	if n1 < 0 {
		n1 = 0
	}
	if n2 < 0 {
		n2 = 0
	}
	// chainMax bounds how far a pure Iy chain can profitably run past
	// the previous band: each step costs GapExtend and the chain must
	// stay within XDrop of the best.
	chainMax := prm.XDrop/prm.GapExtend + 1

	e.rows = e.rows[:0]
	e.tb.reset()

	best := int32(0)
	bestI, bestJ, bestState := int32(0), int32(0), stM

	// Row 0: only Iy (gaps in sequence 1) chained along j.
	row0Max := chainMax
	if row0Max > n2 {
		row0Max = n2
	}
	e.ensure(row0Max + 1)
	m, ix, iy := e.m, e.ix, e.iy
	nm, nix, niy := e.nm, e.nix, e.niy
	m[0], ix[0], iy[0] = 0, negInf, negInf
	lo, hi := int32(0), int32(0)
	g := -prm.GapOpen - prm.GapExtend
	for j := int32(1); j <= row0Max && g >= -prm.XDrop; j++ {
		m[j], ix[j] = negInf, negInf
		iy[j] = g
		g -= prm.GapExtend
		hi = j
	}
	d0 := e.tb.alloc(int(hi) + 1)
	for j := 2; j < len(d0); j++ {
		d0[j] = tbIyExt
	}
	e.rows = append(e.rows, row{lo: 0, dirs: d0})

	for i := int32(1); i <= n1; i++ {
		c1 := d1[base1+sign*i]
		jStart := lo
		jLimit := hi + 1 // beyond this only a live Iy chain can continue
		if jLimit > n2 {
			jLimit = n2
		}
		jMax := hi + 1 + chainMax // hard bound on this row's live span
		if jMax > n2 {
			jMax = n2
		}
		e.ensure(jMax + 1)
		m, ix, iy = e.m, e.ix, e.iy
		nm, nix, niy = e.nm, e.nix, e.niy
		if int(jMax-jStart)+1 > len(e.scratch) {
			e.scratch = make([]byte, 2*(int(jMax-jStart)+1))
		}
		dirs := e.scratch
		newLo, newHi := int32(-1), int32(-1)
		for j := jStart; j <= jMax; j++ {
			if j > jLimit && newHi < j-1 {
				break // band and Iy chain both dead
			}
			var pm, pix int32 = negInf, negInf
			if j >= lo && j <= hi {
				pm, pix = m[j], ix[j]
			}
			var dm, dix, diy int32 = negInf, negInf, negInf
			if j-1 >= lo && j-1 <= hi {
				dm, dix, diy = m[j-1], ix[j-1], iy[j-1]
			}
			var dir byte

			// M: diagonal move.
			mv := negInf
			if j >= 1 {
				pred, ps := dm, byte(stM)
				if dix > pred {
					pred, ps = dix, stIx
				}
				if diy > pred {
					pred, ps = diy, stIy
				}
				if pred > negInf/2 {
					c2 := d2[base2+sign*j]
					if c1 == c2 && c1 < 4 {
						mv = pred + prm.Match
					} else {
						mv = pred - prm.Mismatch
					}
					dir |= ps
				}
			}

			// Ix: vertical move (gap in sequence 2).
			ixv := negInf
			if pm > negInf/2 && pm-prm.GapOpen >= pix {
				ixv = pm - prm.GapOpen - prm.GapExtend
			} else if pix > negInf/2 {
				ixv = pix - prm.GapExtend
				dir |= tbIxExt
			}

			// Iy: horizontal move within the current row.
			iyv := negInf
			if j-1 >= jStart {
				lm, liy := nm[j-1], niy[j-1]
				if lm > negInf/2 && lm-prm.GapOpen >= liy {
					iyv = lm - prm.GapOpen - prm.GapExtend
				} else if liy > negInf/2 {
					iyv = liy - prm.GapExtend
					dir |= tbIyExt
				}
			}

			cell, st := mv, stM
			if ixv > cell {
				cell, st = ixv, stIx
			}
			if iyv > cell {
				cell, st = iyv, stIy
			}
			if cell < best-prm.XDrop {
				mv, ixv, iyv = negInf, negInf, negInf
			} else {
				if newLo < 0 {
					newLo = j
				}
				newHi = j
				if cell > best {
					best, bestI, bestJ, bestState = cell, i, j, st
				}
			}
			nm[j], nix[j], niy[j] = mv, ixv, iyv
			dirs[j-jStart] = dir
		}
		if newLo < 0 {
			break // X-drop termination
		}
		rowDirs := e.tb.alloc(int(newHi-jStart) + 1)
		copy(rowDirs, dirs[:newHi-jStart+1])
		e.rows = append(e.rows, row{lo: jStart, dirs: rowDirs})
		lo, hi = newLo, newHi
		e.m, e.nm = e.nm, e.m
		e.ix, e.nix = e.nix, e.ix
		e.iy, e.niy = e.niy, e.iy
	}

	return e.traceback(d1, d2, base1, base2, sign, bestI, bestJ, bestState, best)
}

// ensure grows all six row buffers to at least n entries, preserving
// existing contents (the previous row's live band must survive).
func (e *Extender) ensure(n int32) {
	if int32(len(e.m)) >= n {
		return
	}
	grow := func(s []int32) []int32 {
		ns := make([]int32, 2*n)
		copy(ns, s)
		return ns
	}
	e.m, e.ix, e.iy = grow(e.m), grow(e.ix), grow(e.iy)
	e.nm, e.nix, e.niy = grow(e.nm), grow(e.nix), grow(e.niy)
}

// traceback walks from the best cell back to the origin, counting
// alignment statistics.
func (e *Extender) traceback(d1, d2 []byte, base1, base2, sign, bi, bj int32, bst int, score int32) Result {
	r := Result{Score: score, Len1: bi, Len2: bj}
	if e.collectOps {
		e.ops = e.ops[:0]
	}
	i, j, st := bi, bj, bst
	for i > 0 || j > 0 {
		rw := e.rows[i]
		dir := rw.dirs[j-rw.lo]
		switch st {
		case stM:
			a, b := d1[base1+sign*i], d2[base2+sign*j]
			if a == b && a < 4 {
				r.Matches++
			} else {
				r.Mismatches++
			}
			if e.collectOps {
				e.ops = append(e.ops, OpPair)
			}
			st = int(dir & 3)
			i--
			j--
		case stIx:
			r.GapBases1++
			if e.collectOps {
				e.ops = append(e.ops, OpGap1)
			}
			if dir&tbIxExt == 0 {
				r.GapOpens++
				st = stM
			}
			i--
		case stIy:
			r.GapBases2++
			if e.collectOps {
				e.ops = append(e.ops, OpGap2)
			}
			if dir&tbIyExt == 0 {
				r.GapOpens++
				st = stM
			}
			j--
		}
	}
	return r
}
