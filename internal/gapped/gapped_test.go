package gapped

import (
	"math/rand"
	"testing"

	"repro/internal/dna"
	"repro/internal/stats"
)

var testParams = Params{Match: 1, Mismatch: 3, GapOpen: 5, GapExtend: 2, XDrop: 1 << 20}

// refExtend is a brute-force full-matrix affine-gap extension: the
// maximum over all cells of the best path from (0,0), with the same
// state model (no Ix↔Iy switches). Used as the oracle for the banded
// X-drop implementation when XDrop is effectively infinite.
func refExtend(s1, s2 []byte, prm Params) int32 {
	n1, n2 := int32(len(s1)), int32(len(s2))
	type cell struct{ m, ix, iy int32 }
	prev := make([]cell, n2+1)
	cur := make([]cell, n2+1)
	for j := range prev {
		prev[j] = cell{negInf, negInf, negInf}
	}
	prev[0].m = 0
	for j := int32(1); j <= n2; j++ {
		open := prev[j-1].m - prm.GapOpen - prm.GapExtend
		ext := prev[j-1].iy - prm.GapExtend
		if open > ext {
			prev[j].iy = open
		} else if prev[j-1].iy > negInf/2 {
			prev[j].iy = ext
		}
	}
	best := int32(0)
	for j := int32(0); j <= n2; j++ {
		if v := max3(prev[j]); v > best {
			best = v
		}
	}
	for i := int32(1); i <= n1; i++ {
		for j := range cur {
			cur[j] = cell{negInf, negInf, negInf}
		}
		for j := int32(0); j <= n2; j++ {
			if j >= 1 {
				pred := max3(prev[j-1])
				if pred > negInf/2 {
					if s1[i-1] == s2[j-1] && s1[i-1] < 4 {
						cur[j].m = pred + prm.Match
					} else {
						cur[j].m = pred - prm.Mismatch
					}
				}
			}
			if prev[j].m > negInf/2 || prev[j].ix > negInf/2 {
				open := prev[j].m - prm.GapOpen - prm.GapExtend
				ext := prev[j].ix - prm.GapExtend
				if open >= ext && prev[j].m > negInf/2 {
					cur[j].ix = open
				} else if prev[j].ix > negInf/2 {
					cur[j].ix = ext
				}
			}
			if j >= 1 && (cur[j-1].m > negInf/2 || cur[j-1].iy > negInf/2) {
				open := cur[j-1].m - prm.GapOpen - prm.GapExtend
				ext := cur[j-1].iy - prm.GapExtend
				if open >= ext && cur[j-1].m > negInf/2 {
					cur[j].iy = open
				} else if cur[j-1].iy > negInf/2 {
					cur[j].iy = ext
				}
			}
			if v := max3(cur[j]); v > best {
				best = v
			}
		}
		prev, cur = cur, prev
	}
	return best
}

func max3(c struct{ m, ix, iy int32 }) int32 {
	v := c.m
	if c.ix > v {
		v = c.ix
	}
	if c.iy > v {
		v = c.iy
	}
	return v
}

func enc(s string) []byte { return dna.Encode([]byte(s)) }

// pad returns a coded buffer with sentinels around the payload so the
// extender can be pointed at interior coordinates.
func pad(s string) ([]byte, int32, int32) {
	codes := append([]byte{0xF0}, enc(s)...)
	codes = append(codes, 0xF0)
	return codes, 1, int32(len(codes) - 1)
}

func TestExtendRightPerfectMatch(t *testing.T) {
	d1, lo1, hi1 := pad("ACGTACGTAC")
	d2, lo2, hi2 := pad("ACGTACGTAC")
	_ = lo2
	e := NewExtender(testParams)
	r := e.ExtendRight(d1, d2, lo1, hi1, lo1, hi2)
	if r.Score != 10 || r.Matches != 10 || r.Mismatches != 0 || r.GapOpens != 0 {
		t.Errorf("perfect match: %+v", r)
	}
	if r.Len1 != 10 || r.Len2 != 10 || r.AlignLen() != 10 {
		t.Errorf("lengths: %+v", r)
	}
}

func TestExtendRightWithSubstitution(t *testing.T) {
	d1, lo1, hi1 := pad("ACGTACGTACGTACGT")
	d2, _, hi2 := pad("ACGTACGAACGTACGT") // one substitution at offset 7
	e := NewExtender(testParams)
	r := e.ExtendRight(d1, d2, lo1, hi1, lo1, hi2)
	if r.Score != 15-3 || r.Matches != 15 || r.Mismatches != 1 {
		t.Errorf("substitution: %+v", r)
	}
}

func TestExtendRightWithInsertion(t *testing.T) {
	// d2 has 2 extra bases after offset 8; a long match continues after,
	// so bridging with one gap of length 2 wins.
	d1, lo1, hi1 := pad("ACGTACGT" + "TTTTCCCCGGGGAAAATTTT")
	d2, _, hi2 := pad("ACGTACGT" + "CA" + "TTTTCCCCGGGGAAAATTTT")
	e := NewExtender(testParams)
	r := e.ExtendRight(d1, d2, lo1, hi1, lo1, hi2)
	// 28 matches, one gap open of 2 bases: 28 - 5 - 2*2 = 19.
	if r.Score != 19 || r.Matches != 28 || r.GapOpens != 1 || r.GapBases2 != 2 || r.GapBases1 != 0 {
		t.Errorf("insertion: %+v", r)
	}
	if r.Len1 != 28 || r.Len2 != 30 {
		t.Errorf("lengths: %+v", r)
	}
	if r.AlignLen() != 30 {
		t.Errorf("align len = %d, want 30", r.AlignLen())
	}
}

func TestExtendLeftMirrorsRight(t *testing.T) {
	s1 := "ACGTACGTTTGGCACGATCA"
	s2 := "ACGTACGTATGGCACGATCA"
	r1 := func() Result {
		d1, lo1, hi1 := pad(s1)
		d2, _, hi2 := pad(s2)
		return NewExtender(testParams).ExtendRight(d1, d2, lo1, hi1, lo1, hi2)
	}()
	rev := func(s string) string {
		b := []byte(s)
		for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
			b[i], b[j] = b[j], b[i]
		}
		return string(b)
	}
	r2 := func() Result {
		d1, _, hi1 := pad(rev(s1))
		d2, lo2, hi2 := pad(rev(s2))
		_ = lo2
		return NewExtender(testParams).ExtendLeft(d1, d2, hi1, 1, hi2, 1)
	}()
	if r1.Score != r2.Score || r1.Matches != r2.Matches || r1.Mismatches != r2.Mismatches {
		t.Errorf("left/right asymmetry: right %+v, left-on-reversed %+v", r1, r2)
	}
}

func TestScoreConsistencyWithStats(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	letters := []byte("ACGT")
	for trial := 0; trial < 200; trial++ {
		n := 5 + rng.Intn(80)
		s1 := make([]byte, n)
		for i := range s1 {
			s1[i] = letters[rng.Intn(4)]
		}
		// derive s2 by mutating s1
		s2 := make([]byte, 0, n+10)
		for _, c := range s1 {
			switch rng.Intn(12) {
			case 0:
				s2 = append(s2, letters[rng.Intn(4)]) // substitute
			case 1:
				s2 = append(s2, c, letters[rng.Intn(4)]) // insert
			case 2: // delete
			default:
				s2 = append(s2, c)
			}
		}
		d1, lo1, hi1 := pad(string(s1))
		d2, _, hi2 := pad(string(s2))
		e := NewExtender(testParams)
		r := e.ExtendRight(d1, d2, lo1, hi1, lo1, hi2)
		p := testParams
		recomputed := r.Matches*p.Match - r.Mismatches*p.Mismatch -
			r.GapOpens*p.GapOpen - (r.GapBases1+r.GapBases2)*p.GapExtend
		if recomputed != r.Score {
			t.Fatalf("trial %d: score %d but stats give %d (%+v)", trial, r.Score, recomputed, r)
		}
		if r.Len1 != r.Matches+r.Mismatches+r.GapBases1 {
			t.Fatalf("trial %d: Len1 inconsistent: %+v", trial, r)
		}
		if r.Len2 != r.Matches+r.Mismatches+r.GapBases2 {
			t.Fatalf("trial %d: Len2 inconsistent: %+v", trial, r)
		}
	}
}

func TestBandedMatchesReferenceDP(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	letters := []byte("ACGT")
	for trial := 0; trial < 150; trial++ {
		n1 := 1 + rng.Intn(40)
		n2 := 1 + rng.Intn(40)
		s1 := make([]byte, n1)
		s2 := make([]byte, n2)
		for i := range s1 {
			s1[i] = letters[rng.Intn(4)]
		}
		for i := range s2 {
			s2[i] = letters[rng.Intn(4)]
		}
		// Half the trials: make s2 a mutated copy so positive scores occur.
		if trial%2 == 0 {
			s2 = append([]byte(nil), s1...)
			for i := range s2 {
				if rng.Intn(10) == 0 {
					s2[i] = letters[rng.Intn(4)]
				}
			}
		}
		d1, lo1, hi1 := pad(string(s1))
		d2, _, hi2 := pad(string(s2))
		e := NewExtender(testParams)
		got := e.ExtendRight(d1, d2, lo1, hi1, lo1, hi2)
		want := refExtend(enc(string(s1)), enc(string(s2)), testParams)
		if got.Score != want {
			t.Fatalf("trial %d: banded %d, reference %d\ns1=%s\ns2=%s",
				trial, got.Score, want, s1, s2)
		}
	}
}

func TestXDropPrunesDistantRecovery(t *testing.T) {
	// 5 matches, then 10 mismatches, then 40 matches. With a small
	// X-drop the extension must stop before the recovery region; with an
	// effectively infinite X-drop the bridge strictly wins
	// (5 − 30 + 40 = 15 > 5).
	block := "CAGGTCAGGTCAGGTCAGGTCAGGTCAGGTCAGGTCAGGT"
	s1 := "ACGTT" + "AAAAAAAAAA" + block
	s2 := "ACGTT" + "CCCCCCCCCC" + block
	d1, lo1, hi1 := pad(s1)
	d2, _, hi2 := pad(s2)
	small := NewExtender(Params{Match: 1, Mismatch: 3, GapOpen: 5, GapExtend: 2, XDrop: 8})
	r := small.ExtendRight(d1, d2, lo1, hi1, lo1, hi2)
	if r.Score != 5 || r.Len1 != 5 {
		t.Errorf("xdrop=8 should stop at the first block: %+v", r)
	}
	big := NewExtender(testParams)
	r2 := big.ExtendRight(d1, d2, lo1, hi1, lo1, hi2)
	if r2.Score != 15 || r2.Matches != 45 || r2.Mismatches != 10 {
		t.Errorf("infinite xdrop should bridge: %+v", r2)
	}
}

func TestExtendBothMergesArms(t *testing.T) {
	s := "ACGTTGCAGGTACCTTACGATT"
	d1, lo1, hi1 := pad(s)
	d2, lo2, hi2 := pad(s)
	e := NewExtender(testParams)
	mid := lo1 + int32(len(s))/2
	r := e.ExtendBoth(d1, d2, mid, mid, lo1, hi1, lo2, hi2)
	if r.Score != int32(len(s)) || r.Matches != int32(len(s)) {
		t.Errorf("ExtendBoth on identical sequences: %+v", r)
	}
	if r.Len1 != int32(len(s)) || r.Len2 != int32(len(s)) {
		t.Errorf("full coverage expected: %+v", r)
	}
}

func TestExtendRespectsBounds(t *testing.T) {
	// Identical long sequences but tight bounds: extension must not read
	// past hi1/hi2.
	s := "ACGTACGTACGTACGTACGT"
	d1, lo1, _ := pad(s)
	d2, lo2, _ := pad(s)
	e := NewExtender(testParams)
	r := e.ExtendRight(d1, d2, lo1, lo1+5, lo2, lo2+5)
	if r.Len1 != 5 || r.Score != 5 {
		t.Errorf("bounded extension: %+v", r)
	}
	r = e.ExtendLeft(d1, d2, lo1+8, lo1+3, lo2+8, lo2+3)
	if r.Len1 != 5 || r.Score != 5 {
		t.Errorf("bounded left extension: %+v", r)
	}
}

func TestZeroLengthArms(t *testing.T) {
	d1, lo1, _ := pad("ACGT")
	d2, lo2, _ := pad("ACGT")
	e := NewExtender(testParams)
	r := e.ExtendRight(d1, d2, lo1, lo1, lo2, lo2)
	if r.Score != 0 || r.AlignLen() != 0 {
		t.Errorf("empty right arm: %+v", r)
	}
	r = e.ExtendLeft(d1, d2, lo1, lo1, lo2, lo2)
	if r.Score != 0 || r.AlignLen() != 0 {
		t.Errorf("empty left arm: %+v", r)
	}
}

func TestMismatchedAnchorStillExtends(t *testing.T) {
	// First pair mismatches, then 20 matches: score 20-3=17.
	s1 := "A" + "CAGGTCAGGTCAGGTCAGGT"
	s2 := "G" + "CAGGTCAGGTCAGGTCAGGT"
	d1, lo1, hi1 := pad(s1)
	d2, _, hi2 := pad(s2)
	e := NewExtender(testParams)
	r := e.ExtendRight(d1, d2, lo1, hi1, lo1, hi2)
	if r.Score != 17 || r.Mismatches != 1 || r.Matches != 20 {
		t.Errorf("mismatched anchor: %+v", r)
	}
}

func TestAmbiguousBasesAreMismatches(t *testing.T) {
	s1 := "ACGTNACGTACGTAAC"
	s2 := "ACGTNACGTACGTAAC"
	d1, lo1, hi1 := pad(s1)
	d2, _, hi2 := pad(s2)
	e := NewExtender(testParams)
	r := e.ExtendRight(d1, d2, lo1, hi1, lo1, hi2)
	if r.Matches != 15 || r.Mismatches != 1 {
		t.Errorf("N vs N must mismatch: %+v", r)
	}
}

func TestExtenderReusableAcrossCalls(t *testing.T) {
	e := NewExtender(testParams)
	d1, lo1, hi1 := pad("ACGTACGTACGTACGTACGAACGT")
	d2, _, hi2 := pad("ACGTACGTACGTACGTACGAACGT")
	first := e.ExtendRight(d1, d2, lo1, hi1, lo1, hi2)
	for i := 0; i < 5; i++ {
		again := e.ExtendRight(d1, d2, lo1, hi1, lo1, hi2)
		if again != first {
			t.Fatalf("call %d: %+v != %+v", i, again, first)
		}
	}
}

func TestNewExtenderPanicsOnBadParams(t *testing.T) {
	bad := []Params{
		{Match: 1, Mismatch: 3, GapOpen: 5, GapExtend: 0, XDrop: 10},
		{Match: 0, Mismatch: 3, GapOpen: 5, GapExtend: 2, XDrop: 10},
		{Match: 1, Mismatch: 3, GapOpen: 5, GapExtend: 2, XDrop: 0},
	}
	for i, p := range bad {
		func() {
			defer func() { recover() }()
			NewExtender(p)
			t.Errorf("params %d did not panic", i)
		}()
	}
}

func TestFromScoring(t *testing.T) {
	p := FromScoring(stats.DefaultScoring, 25)
	if p.Match != 1 || p.Mismatch != 3 || p.GapOpen != 5 || p.GapExtend != 2 || p.XDrop != 25 {
		t.Errorf("FromScoring = %+v", p)
	}
}

func BenchmarkExtendRight1k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	letters := []byte("ACGT")
	s1 := make([]byte, 1000)
	for i := range s1 {
		s1[i] = letters[rng.Intn(4)]
	}
	s2 := append([]byte(nil), s1...)
	for i := range s2 {
		if rng.Intn(20) == 0 {
			s2[i] = letters[rng.Intn(4)]
		}
	}
	d1, lo1, hi1 := pad(string(s1))
	d2, _, hi2 := pad(string(s2))
	e := NewExtender(Params{Match: 1, Mismatch: 3, GapOpen: 5, GapExtend: 2, XDrop: 25})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ExtendRight(d1, d2, lo1, hi1, lo1, hi2)
	}
}
