package gapped

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildPair derives a mutated sequence pair from fuzz input.
func buildPair(seed int64, nRaw uint8) (d1, d2 []byte, lo1, hi1, lo2, hi2 int32) {
	rng := rand.New(rand.NewSource(seed))
	n := int(nRaw)%120 + 5
	s1 := make([]byte, n)
	for i := range s1 {
		s1[i] = byte(rng.Intn(4))
	}
	var s2 []byte
	for _, c := range s1 {
		switch rng.Intn(10) {
		case 0:
			s2 = append(s2, byte(rng.Intn(4)))
		case 1:
			s2 = append(s2, c, byte(rng.Intn(4)))
		case 2:
		default:
			s2 = append(s2, c)
		}
	}
	if len(s2) == 0 {
		s2 = []byte{0}
	}
	d1 = append(append([]byte{0xF0}, s1...), 0xF0)
	d2 = append(append([]byte{0xF0}, s2...), 0xF0)
	return d1, d2, 1, int32(len(d1) - 1), 1, int32(len(d2) - 1)
}

// Property: the optimal-path statistics always reconstruct the score.
func TestQuickStatsReconstructScore(t *testing.T) {
	prm := Params{Match: 1, Mismatch: 3, GapOpen: 5, GapExtend: 2, XDrop: 30}
	e := NewExtender(prm)
	f := func(seed int64, nRaw uint8) bool {
		d1, d2, lo1, hi1, lo2, hi2 := buildPair(seed, nRaw)
		_ = lo1
		_ = lo2
		r := e.ExtendRight(d1, d2, 1, hi1, 1, hi2)
		recomputed := r.Matches*prm.Match - r.Mismatches*prm.Mismatch -
			r.GapOpens*prm.GapOpen - r.GapBases()*prm.GapExtend
		return recomputed == r.Score &&
			r.Len1 == r.Matches+r.Mismatches+r.GapBases1 &&
			r.Len2 == r.Matches+r.Mismatches+r.GapBases2 &&
			r.Score >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: score never decreases when X-drop grows (a larger search
// region can only find an equal or better maximum).
func TestQuickXDropMonotone(t *testing.T) {
	small := NewExtender(Params{Match: 1, Mismatch: 3, GapOpen: 5, GapExtend: 2, XDrop: 6})
	big := NewExtender(Params{Match: 1, Mismatch: 3, GapOpen: 5, GapExtend: 2, XDrop: 60})
	f := func(seed int64, nRaw uint8) bool {
		d1, d2, _, hi1, _, hi2 := buildPair(seed, nRaw)
		rs := small.ExtendRight(d1, d2, 1, hi1, 1, hi2)
		rb := big.ExtendRight(d1, d2, 1, hi1, 1, hi2)
		return rb.Score >= rs.Score
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: the collected edit path is consistent with the result
// statistics — op counts equal the stat counters.
func TestQuickPathMatchesStats(t *testing.T) {
	e := NewExtender(Params{Match: 1, Mismatch: 3, GapOpen: 5, GapExtend: 2, XDrop: 30})
	f := func(seed int64, nRaw uint8) bool {
		d1, d2, _, hi1, _, hi2 := buildPair(seed, nRaw)
		r, ops := e.ExtendRightPath(d1, d2, 1, hi1, 1, hi2)
		var pairs, g1, g2 int32
		for _, op := range ops {
			switch op {
			case OpPair:
				pairs++
			case OpGap1:
				g1++
			case OpGap2:
				g2++
			default:
				return false
			}
		}
		return pairs == r.Matches+r.Mismatches && g1 == r.GapBases1 && g2 == r.GapBases2 &&
			int32(len(ops)) == r.AlignLen()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: Add is commutative and totals add up.
func TestQuickAddCommutative(t *testing.T) {
	e := NewExtender(Params{Match: 1, Mismatch: 3, GapOpen: 5, GapExtend: 2, XDrop: 30})
	f := func(seedA, seedB int64, nA, nB uint8) bool {
		d1, d2, _, hi1, _, hi2 := buildPair(seedA, nA)
		e1, f2, _, hj1, _, hj2 := buildPair(seedB, nB)
		ra := e.ExtendRight(d1, d2, 1, hi1, 1, hi2)
		rb := e.ExtendRight(e1, f2, 1, hj1, 1, hj2)
		ab := ra.Add(rb)
		ba := rb.Add(ra)
		return ab == ba && ab.Score == ra.Score+rb.Score && ab.AlignLen() == ra.AlignLen()+rb.AlignLen()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: left extension on a reversed pair equals right extension on
// the forward pair (mirror symmetry of the DP).
func TestQuickLeftRightMirror(t *testing.T) {
	e := NewExtender(Params{Match: 1, Mismatch: 3, GapOpen: 5, GapExtend: 2, XDrop: 40})
	rev := func(s []byte) []byte {
		out := make([]byte, len(s))
		for i, c := range s {
			out[len(s)-1-i] = c
		}
		return out
	}
	f := func(seed int64, nRaw uint8) bool {
		d1, d2, _, hi1, _, hi2 := buildPair(seed, nRaw)
		right := e.ExtendRight(d1, d2, 1, hi1, 1, hi2)
		r1 := append(append([]byte{0xF0}, rev(d1[1:hi1])...), 0xF0)
		r2 := append(append([]byte{0xF0}, rev(d2[1:hi2])...), 0xF0)
		left := e.ExtendLeft(r1, r2, int32(len(r1)-1), 1, int32(len(r2)-1), 1)
		return left.Score == right.Score && left.Matches == right.Matches &&
			left.GapOpens == right.GapOpens
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
