// Incremental index construction for appended-to banks.
//
// The inverted-index lineage this repository follows (PAPERS.md: Wang &
// Zhao 2013; Kucherov 2018) treats incremental database growth as the
// normal case: an EST bank gains a few runs, a genome bank gains a
// chromosome, and the index of everything that was already there is
// still exactly right. The bank layout makes that literal: appending
// sequences appends bytes after the final sentinel and touches nothing
// before it, so every stored occurrence — position, owning sequence,
// bounds — remains valid verbatim in the grown bank. ExtendFromParts
// exploits this: it scans only the appended suffix and merges the new
// occurrences into a rebuilt CSR around the stored ones, paying
// O(suffix) scan work (plus the unavoidable O(bank) memcpy of the
// stored arrays) instead of the full O(bank) scan-and-scatter.
package index

import (
	"fmt"
	"slices"

	"repro/internal/bank"
	"repro/internal/seed"
)

// ExtendFromParts builds the index Build(b, opts) would produce, given
// the serialized parts of an index previously built (with the same
// options key) over the bank prefix of length oldDataLen — the first k
// sequences of b, as recorded by bank.PrefixLen(k). Only the appended
// suffix Data[oldDataLen:] is scanned, encoded, and dust-masked; the
// stored occurrences are copied through group-wise. The output is
// byte-identical to a cold full build:
//
//   - Coordinates are append-stable: the suffix begins after the
//     sentinel closing the prefix, so no stored position, sequence
//     index, or bound shifts, and no seed window straddles the boundary
//     (a window containing the sentinel is invalid by construction).
//   - Sampling is append-stable: SampleStep/SamplePhase select absolute
//     Data residues, which do not move.
//   - Dust masking is append-stable: the masker splits runs at invalid
//     bytes (sentinels included), so prefix mask bits cannot change when
//     bytes are appended after the final sentinel — the suffix is
//     masked in isolation and the results agree with a whole-bank pass.
//
// The old parts are untrusted (they come from a disk file): they are
// fully validated against b first, including that every stored position
// lies below oldDataLen, so a hostile file cannot smuggle suffix
// occurrences in and have them doubled by the extension scan. The
// caller (package ixdisk) is responsible for having checked the
// identity story — that the first k sequences of b really are the bank
// the parts were built from (per-sequence checksums) and that the
// options keys match.
//
//scorislint:hotpath
func ExtendFromParts(b *bank.Bank, opts Options, old Parts, oldDataLen int) (*Index, error) {
	opts = opts.normalized()
	if opts.W < 1 || opts.W > seed.MaxW {
		return nil, fmt.Errorf("index: ExtendFromParts: invalid W=%d", opts.W)
	}
	data := b.Data
	if oldDataLen < 1 || oldDataLen > len(data) || data[oldDataLen-1] != bank.Sentinel {
		return nil, fmt.Errorf("index: ExtendFromParts: prefix boundary %d of %d does not end on a sentinel",
			oldDataLen, len(data))
	}
	if err := checkParts(b, opts, old, int32(oldDataLen)); err != nil {
		return nil, fmt.Errorf("index: ExtendFromParts: stored prefix parts invalid: %w", err)
	}
	n := seed.NumCodes(opts.W)

	// ---- suffix scan: exactly Build's pass 1 over [oldDataLen, end),
	// serial (the suffix is the small side of the trade). Dust runs over
	// the suffix slice only — the boundary byte is a sentinel, so the
	// slice starts on a run boundary and local masking equals the
	// whole-bank masking of those positions ----
	w := opts.W
	w32 := int32(w)
	step := int32(opts.SampleStep)
	phase := int32(opts.SamplePhase)
	base := int32(oldDataLen)
	var maskPfx []int32 // suffix-local coordinates
	if opts.Dust != nil {
		maskPfx = opts.Dust.MaskPrefix(data[oldDataLen:])
	}
	hint := (len(data) - oldDataLen + int(step) - 1) / int(step)
	// One packed code<<32|pos word per accepted suffix window (code ≤ 30
	// bits, pos 31): sorting these yields exactly the CSR order of the
	// suffix — code-major, position-minor — with no counting buffers.
	occBuf := make([]uint64, 0, hint)
	var masked, sampled int
	scanRange(data, w, oldDataLen, len(data), func(pos int32, c seed.Code) {
		if step > 1 && pos%step != phase {
			sampled++
			return
		}
		if maskPfx != nil && maskPfx[pos-base+w32] != maskPfx[pos-base] {
			masked++
			return
		}
		occBuf = append(occBuf, uint64(c)<<32|uint64(pos))
	})
	slices.Sort(occBuf)

	// ---- merge. The stored arrays are already in CSR order and every
	// stored occurrence of a code precedes every appended one, so the
	// merged layout is the stored arrays with the sorted suffix runs
	// spliced in at their codes' group ends — at most one splice per
	// distinct suffix code, so the stored arrays move in O(distinct
	// suffix codes) large copies instead of one copy per occupied code ----
	total := old.Indexed + len(occBuf)
	ix := &Index{
		Bank:       b,
		W:          w,
		Starts:     make([]int32, n+1),
		Pos:        make([]int32, total),
		OccSeq:     make([]int32, total),
		OccLo:      make([]int32, total),
		OccHi:      make([]int32, total),
		Indexed:    total,
		MaskedOut:  old.MaskedOut + masked,
		SampledOut: old.SampledOut + sampled,
		opts:       opts,
	}
	var oldFrom, dst int32
	splice := func(c int32, run []uint64) {
		// Copy the stored run up through the end of group c, then append
		// the suffix occurrences of c with their sidecar entries.
		end := old.Starts[c+1]
		copy(ix.Pos[dst:], old.Pos[oldFrom:end])
		copy(ix.OccSeq[dst:], old.OccSeq[oldFrom:end])
		copy(ix.OccLo[dst:], old.OccLo[oldFrom:end])
		copy(ix.OccHi[dst:], old.OccHi[oldFrom:end])
		dst += end - oldFrom
		oldFrom = end
		for _, v := range run {
			pos := int32(v & (1<<31 - 1))
			ix.Pos[dst] = pos
			s := b.SeqAt(pos)
			ix.OccSeq[dst] = s
			ix.OccLo[dst], ix.OccHi[dst] = b.SeqBounds(int(s))
			dst++
		}
	}
	for i := 0; i < len(occBuf); {
		c := int32(occBuf[i] >> 32)
		j := i + 1
		for j < len(occBuf) && int32(occBuf[j]>>32) == c {
			j++
		}
		splice(c, occBuf[i:j])
		i = j
	}
	copy(ix.Pos[dst:], old.Pos[oldFrom:])
	copy(ix.OccSeq[dst:], old.OccSeq[oldFrom:])
	copy(ix.OccLo[dst:], old.OccLo[oldFrom:])
	copy(ix.OccHi[dst:], old.OccHi[oldFrom:])
	if int(dst)+old.Indexed-int(oldFrom) != total {
		return nil, fmt.Errorf("index: ExtendFromParts: merged %d occurrences, expected %d",
			int(dst)+old.Indexed-int(oldFrom), total)
	}

	// ---- prefix sums: the stored Starts shifted by the running count
	// of suffix insertions. Between suffix codes the shift is constant,
	// so the 4^W-entry array fills in plain add-copy spans (and a real
	// memcpy for the zero-shift span before the first suffix code)
	// instead of a per-code branch ----
	var shift int32
	prev := 0
	for i := 0; i < len(occBuf); {
		c := int(occBuf[i] >> 32)
		if shift == 0 {
			copy(ix.Starts[prev:c+1], old.Starts[prev:c+1])
		} else {
			for x := prev; x <= c; x++ {
				ix.Starts[x] = old.Starts[x] + shift
			}
		}
		prev = c + 1
		j := i + 1
		for j < len(occBuf) && int(occBuf[j]>>32) == c {
			j++
		}
		shift += int32(j - i)
		i = j
	}
	for x := prev; x <= n; x++ {
		ix.Starts[x] = old.Starts[x] + shift
	}

	// ---- directory: linear merge of the stored occupied codes with
	// the distinct suffix codes — O(occupied + suffix), never a scan of
	// the 4^W code space ----
	distinct := 0
	for i := 0; i < len(occBuf); {
		c := occBuf[i] >> 32
		for i < len(occBuf) && occBuf[i]>>32 == c {
			i++
		}
		distinct++
	}
	ix.Codes = make([]seed.Code, 0, len(old.Codes)+distinct)
	oi, si := 0, 0
	for oi < len(old.Codes) || si < len(occBuf) {
		var sc seed.Code
		haveS := si < len(occBuf)
		if haveS {
			sc = seed.Code(occBuf[si] >> 32)
		}
		switch {
		case !haveS || (oi < len(old.Codes) && old.Codes[oi] < sc):
			ix.Codes = append(ix.Codes, old.Codes[oi])
			oi++
		case oi < len(old.Codes) && old.Codes[oi] == sc:
			ix.Codes = append(ix.Codes, sc)
			oi++
			for si < len(occBuf) && seed.Code(occBuf[si]>>32) == sc {
				si++
			}
		default:
			ix.Codes = append(ix.Codes, sc)
			for si < len(occBuf) && seed.Code(occBuf[si]>>32) == sc {
				si++
			}
		}
	}
	return ix, nil
}
