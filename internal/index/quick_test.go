package index

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bank"
	"repro/internal/fasta"
	"repro/internal/seed"
)

// randomBank derives a bank (with occasional Ns) from fuzz input.
func randomBank(seedVal int64, nSeqs, maxLen int) *bank.Bank {
	rng := rand.New(rand.NewSource(seedVal))
	letters := []byte("ACGTACGTACGTACGTN") // ~6% N
	recs := make([]*fasta.Record, nSeqs)
	for i := range recs {
		n := rng.Intn(maxLen + 1)
		s := make([]byte, n)
		for j := range s {
			s[j] = letters[rng.Intn(len(letters))]
		}
		recs[i] = &fasta.Record{ID: "r", Seq: s}
	}
	return bank.New("q", recs)
}

// Invariant: chains are strictly ascending, every chained position
// encodes to its own code, and the chain total equals the number of
// valid windows.
func TestQuickChainInvariants(t *testing.T) {
	f := func(seedVal int64, nRaw, wRaw uint8) bool {
		w := int(wRaw)%6 + 3
		b := randomBank(seedVal, int(nRaw)%6+1, 150)
		ix := Build(b, Options{W: w})
		total := 0
		for c := 0; c < ix.NumCodes(); c++ {
			prev := int32(-1)
			for p := ix.Head(seed.Code(c)); p >= 0; p = ix.NextPos(p) {
				if p <= prev {
					return false
				}
				prev = p
				got, ok := seed.Encode(b.Data[p:], w)
				if !ok || got != seed.Code(c) {
					return false
				}
				total++
			}
		}
		return total == seed.Count(b.Data, w) && total == ix.Indexed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Invariant: sampling partitions the full index; the two phases of
// step 2 are disjoint and their union is the full set.
func TestQuickSamplingPartition(t *testing.T) {
	f := func(seedVal int64, nRaw uint8) bool {
		const w = 5
		b := randomBank(seedVal, int(nRaw)%4+1, 200)
		full := Build(b, Options{W: w})
		p0 := Build(b, Options{W: w, SampleStep: 2, SamplePhase: 0})
		p1 := Build(b, Options{W: w, SampleStep: 2, SamplePhase: 1})
		if p0.Indexed+p1.Indexed != full.Indexed {
			return false
		}
		// Every chained position in p0 has even Data coordinate.
		for c := 0; c < p0.NumCodes(); c++ {
			for p := p0.Head(seed.Code(c)); p >= 0; p = p0.NextPos(p) {
				if p%2 != 0 {
					return false
				}
			}
			for p := p1.Head(seed.Code(c)); p >= 0; p = p1.NextPos(p) {
				if p%2 != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Invariant: building twice yields identical structures (determinism).
func TestQuickBuildDeterministic(t *testing.T) {
	f := func(seedVal int64, nRaw uint8) bool {
		const w = 4
		b := randomBank(seedVal, int(nRaw)%4+1, 120)
		a := Build(b, Options{W: w})
		c := Build(b, Options{W: w})
		if a.Indexed != c.Indexed {
			return false
		}
		for i := range a.Starts {
			if a.Starts[i] != c.Starts[i] {
				return false
			}
		}
		for i := range a.Pos {
			if a.Pos[i] != c.Pos[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
