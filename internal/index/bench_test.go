package index

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/bank"
	"repro/internal/dust"
	"repro/internal/fasta"
	"repro/internal/simulate"
)

func benchBank(n int) *bank.Bank {
	rng := rand.New(rand.NewSource(1))
	letters := []byte("ACGT")
	sb := make([]byte, n)
	for i := range sb {
		sb[i] = letters[rng.Intn(4)]
	}
	return bank.New("bench", []*fasta.Record{{ID: "r", Seq: sb}})
}

// BenchmarkIndexBuild measures the two-pass counting-sort build on a
// 1 Mb bank at W=11, serial vs all-cores parallel, against the legacy
// linked-chain build (the pre-CSR implementation, which computed no
// occupied-code directory and no bounds sidecar) as the same-machine
// baseline.
func BenchmarkIndexBuild(b *testing.B) {
	bk := benchBank(1 << 20)
	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", runtime.GOMAXPROCS(0)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.SetBytes(1 << 20)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Build(bk, Options{W: 11, Workers: tc.workers})
			}
		})
	}
	b.Run("legacyChain", func(b *testing.B) {
		b.SetBytes(1 << 20)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buildChainRef(bk, Options{W: 11})
		}
	})
}

// BenchmarkIndexScan_CSRvsChain times the step-2 scan shape — walk the
// occupied seed codes in ascending order and enumerate every X1×X2 hit
// pair with its sequence bounds — on the BenchScale EST workload (the
// divisor-64 EST7×EST6 pair, the largest of the EST series the
// top-level table benches sweep), without the extension work, so the
// index access pattern is all that is measured. Both variants iterate
// the same precomputed occupied-code list: the empty-dictionary sweep
// is layout-independent, and the CSR index provides the directory for
// free, so giving it to the chain side too is conservative.
//
// "Chain" reproduces the pre-CSR hot loop verbatim: walk the bank-1
// Dict/Next chain, rematerialize the bank-2 occurrences into an occ2
// cache, and call Bank.SeqAt/SeqBounds per occurrence. "CSR" is the
// current loop: two contiguous slice views plus the precomputed bounds
// sidecar. The ratio is the cache-locality + precomputation win.
func BenchmarkIndexScan_CSRvsChain(b *testing.B) {
	ds := simulate.NewDataSet(64)
	b1, b2 := ds.Get(simulate.EST7), ds.Get(simulate.EST6)
	const w = 11
	ix1 := Build(b1, Options{W: w})
	ix2 := Build(b2, Options{W: w})
	ref1 := buildChainRef(b1, Options{W: w})
	ref2 := buildChainRef(b2, Options{W: w})
	codes := ix1.Codes

	var chainPairs, csrPairs int64
	b.Run("Chain", func(b *testing.B) {
		var sink, pairs int64
		type occ struct{ p, lo, hi int32 }
		var occ2 []occ
		for i := 0; i < b.N; i++ {
			pairs = 0
			for _, c := range codes {
				h1 := ref1.dict[c]
				h2 := ref2.dict[c]
				if h2 < 0 {
					continue
				}
				occ2 = occ2[:0]
				for p2 := h2; p2 >= 0; p2 = ref2.next[p2] {
					lo2, hi2 := b2.SeqBounds(int(b2.SeqAt(p2)))
					occ2 = append(occ2, occ{p2, lo2, hi2})
				}
				for p1 := h1; p1 >= 0; p1 = ref1.next[p1] {
					lo1, hi1 := b1.SeqBounds(int(b1.SeqAt(p1)))
					for _, o2 := range occ2 {
						pairs++
						sink += int64(p1 + o2.p + lo1 + hi1 + o2.lo + o2.hi)
					}
				}
			}
		}
		benchSink, chainPairs = sink, pairs
	})
	b.Run("CSR", func(b *testing.B) {
		var sink, pairs int64
		for i := 0; i < b.N; i++ {
			pairs = 0
			for _, code := range codes {
				s1, e1 := ix1.OccRange(code)
				s2, e2 := ix2.OccRange(code)
				if s2 == e2 {
					continue
				}
				pos2 := ix2.Pos[s2:e2]
				lo2 := ix2.OccLo[s2:e2]
				hi2 := ix2.OccHi[s2:e2]
				for i1 := s1; i1 < e1; i1++ {
					p1 := ix1.Pos[i1]
					lo1, hi1 := ix1.OccLo[i1], ix1.OccHi[i1]
					for j, p2 := range pos2 {
						pairs++
						sink += int64(p1 + p2 + lo1 + hi1 + lo2[j] + hi2[j])
					}
				}
			}
		}
		benchSink, csrPairs = sink, pairs
	})
	// Only comparable when a -bench filter didn't skip one variant.
	if chainPairs != 0 && csrPairs != 0 && chainPairs != csrPairs {
		b.Fatalf("scan mismatch: chain saw %d pairs, CSR %d", chainPairs, csrPairs)
	}
}

var benchSink int64

// benchBankSeqs builds a bank of count sequences of seqLen bases each,
// so append-extension benchmarks can split it at record boundaries.
func benchBankSeqs(count, seqLen int) *bank.Bank {
	rng := rand.New(rand.NewSource(7))
	letters := []byte("ACGT")
	recs := make([]*fasta.Record, count)
	for i := range recs {
		sb := make([]byte, seqLen)
		for j := range sb {
			sb[j] = letters[rng.Intn(4)]
		}
		recs[i] = &fasta.Record{ID: fmt.Sprintf("r%d", i), Seq: sb}
	}
	return bank.New("bench", recs)
}

// BenchmarkIndexExtend measures the append-aware rebuild against the
// cold full build it replaces (the acceptance shape of the store
// lifecycle PR): a 4 Mb bank of 256 sequences grows by a suffix of 1,
// 16, or 64 sequences, under the engine-default shape (W=11, dust on).
// The extension pays the suffix scan/mask plus validation and memcpy
// of the stored arrays, so its cost tracks the suffix size with a flat
// bank-proportional floor (the copy), while the full build re-scans,
// re-masks, and re-sorts the whole bank.
func BenchmarkIndexExtend(b *testing.B) {
	const (
		seqs   = 256
		seqLen = 1 << 14 // 256 × 16 Kb = 4 Mb total
	)
	full := benchBankSeqs(seqs, seqLen)
	opts := Options{W: 11, Workers: 1, Dust: dust.New(0, 0)}
	for _, suffix := range []int{1, 16, 64} {
		k := seqs - suffix
		b.Run(fmt.Sprintf("suffix%d", suffix), func(b *testing.B) {
			// benchBankSeqs is deterministic, so the first k records of
			// a fresh generation are exactly the full bank's prefix.
			old := Build(benchBankSeqs(k, seqLen), opts).Parts()
			boundary := full.PrefixLen(k)
			b.SetBytes(int64(suffix * seqLen))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ExtendFromParts(full, opts, old, boundary); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("fullBuild", func(b *testing.B) {
		b.SetBytes(int64(seqs * seqLen))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Build(full, opts)
		}
	})
}
