package index

import (
	"testing"

	"repro/internal/bank"
	"repro/internal/seed"
)

// sameIndexT asserts two indexes are identical in every array and
// counter — the byte-identity invariant the block operations promise.
func sameIndexT(t *testing.T, want, got *Index) {
	t.Helper()
	samePartsT(t, want.Parts(), got.Parts())
}

// splitCuts exercises the boundary shapes that matter: no cut (one
// block), a cut after every sequence, uneven cuts, and cuts adjacent
// to empty/short sequences.
func splitCuts(numSeqs int) map[string][]int {
	cuts := map[string][]int{
		"single":  nil,
		"mid":     {numSeqs / 2},
		"uneven":  {1, numSeqs - 1},
		"hostile": {-3, 0, numSeqs, numSeqs + 7, numSeqs / 2, numSeqs / 2},
	}
	all := make([]int, 0, numSeqs)
	for i := 1; i < numSeqs; i++ {
		all = append(all, i)
	}
	cuts["every"] = all
	return cuts
}

func TestSplitAndFromBlocksRoundTrip(t *testing.T) {
	b := bank.New("blocks", extendRecs(6000))
	for name, opts := range extendVariants() {
		t.Run(name, func(t *testing.T) {
			ix := Build(b, opts)
			for cutName, cuts := range splitCuts(b.NumSeqs()) {
				blocks := SplitBlocks(ix, cuts)
				got, err := FromBlocks(b, opts, blocks)
				if err != nil {
					t.Fatalf("%s: FromBlocks: %v", cutName, err)
				}
				sameIndexT(t, ix, got)
			}
		})
	}
}

// TestBuildBlockMatchesSplit is the append-path invariant: building a
// block over a sequence range in isolation yields exactly the block a
// whole-bank build splits out — so an appended suffix block plus the
// stored prefix blocks reassemble to the cold-build index.
func TestBuildBlockMatchesSplit(t *testing.T) {
	b := bank.New("blocks", extendRecs(4000))
	for name, opts := range extendVariants() {
		t.Run(name, func(t *testing.T) {
			ix := Build(b, opts)
			cut := b.NumSeqs() - 2
			blocks := SplitBlocks(ix, []int{cut})
			built, err := BuildBlock(b, opts, cut, b.NumSeqs())
			if err != nil {
				t.Fatal(err)
			}
			want := blocks[1]
			if want.SeqLo != built.SeqLo || want.SeqHi != built.SeqHi ||
				want.DataLo != built.DataLo || want.DataHi != built.DataHi ||
				want.MaskedOut != built.MaskedOut || want.SampledOut != built.SampledOut {
				t.Fatalf("block envelope differs: split %+v, built %+v",
					[]int{want.SeqLo, want.SeqHi, want.DataLo, want.DataHi, want.MaskedOut, want.SampledOut},
					[]int{built.SeqLo, built.SeqHi, built.DataLo, built.DataHi, built.MaskedOut, built.SampledOut})
			}
			if len(want.Codes) != len(built.Codes) {
				t.Fatalf("split block has %d codes, built block %d", len(want.Codes), len(built.Codes))
			}
			for i := range want.Codes {
				if want.Codes[i] != built.Codes[i] || want.Counts[i] != built.Counts[i] {
					t.Fatalf("code entry %d differs: split (%d,%d), built (%d,%d)",
						i, want.Codes[i], want.Counts[i], built.Codes[i], built.Counts[i])
				}
			}
			for i := range want.Pos {
				if want.Pos[i] != built.Pos[i] || want.OccSeq[i] != built.OccSeq[i] ||
					want.OccLo[i] != built.OccLo[i] || want.OccHi[i] != built.OccHi[i] {
					t.Fatalf("occurrence %d differs", i)
				}
			}
		})
	}
}

// TestAppendViaBlocksMatchesBuild is the end-to-end v3 append story at
// the index layer: split the old bank's index, build one block over the
// appended suffix, reassemble — identical to a cold build of the grown
// bank.
func TestAppendViaBlocksMatchesBuild(t *testing.T) {
	recs := extendRecs(5000)
	old := bank.New("grow", recs[:3])
	grown := bank.New("grow", recs)
	for name, opts := range extendVariants() {
		t.Run(name, func(t *testing.T) {
			oldBlocks := SplitBlocks(Build(old, opts), []int{1})
			// Stored blocks are valid verbatim for the grown bank:
			// coordinates are append-stable.
			suffix, err := BuildBlock(grown, opts, old.NumSeqs(), grown.NumSeqs())
			if err != nil {
				t.Fatal(err)
			}
			got, err := FromBlocks(grown, opts, append(oldBlocks, suffix))
			if err != nil {
				t.Fatal(err)
			}
			sameIndexT(t, Build(grown, opts), got)
		})
	}
}

func TestFromBlocksRejectsHostileBlocks(t *testing.T) {
	b := bank.New("hostile", extendRecs(3000))
	opts := Options{W: 8}
	ix := Build(b, opts)
	fresh := func() []BlockParts { return SplitBlocks(ix, []int{2}) }

	cases := map[string]func([]BlockParts) []BlockParts{
		"empty":       func(bl []BlockParts) []BlockParts { return nil },
		"gap":         func(bl []BlockParts) []BlockParts { return bl[1:] },
		"truncated":   func(bl []BlockParts) []BlockParts { return bl[:1] },
		"overlap":     func(bl []BlockParts) []BlockParts { bl[1].SeqLo = 1; return bl },
		"badDataLo":   func(bl []BlockParts) []BlockParts { bl[1].DataLo++; return bl },
		"badCount":    func(bl []BlockParts) []BlockParts { bl[0].Counts[0]++; return bl },
		"zeroCount":   func(bl []BlockParts) []BlockParts { bl[0].Counts[0] = 0; return bl },
		"unsorted":    func(bl []BlockParts) []BlockParts { bl[0].Codes[0] = bl[0].Codes[1] + 1; return bl },
		"codeSpace":   func(bl []BlockParts) []BlockParts { bl[0].Codes[0] = seed.Code(seed.NumCodes(opts.W)); return bl },
		"posEscape":   func(bl []BlockParts) []BlockParts { bl[0].Pos[0] = int32(bl[0].DataHi); return bl },
		"sidecarLen":  func(bl []BlockParts) []BlockParts { bl[0].OccSeq = bl[0].OccSeq[:1]; return bl },
		"wrongSeqHi":  func(bl []BlockParts) []BlockParts { bl[1].SeqHi--; bl[1].DataHi = b.PrefixLen(bl[1].SeqHi); return bl },
		"doubleCover": func(bl []BlockParts) []BlockParts { return append(bl, bl[1]) },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := FromBlocks(b, opts, mutate(fresh())); err == nil {
				t.Fatal("hostile blocks accepted")
			}
		})
	}
}
