package index

import (
	"testing"
	"testing/quick"

	"repro/internal/bank"
	"repro/internal/dust"
	"repro/internal/seed"
)

// chainRef is the legacy linked-chain index builder (the pre-CSR
// implementation, kept verbatim as a test oracle): Dict[c] heads a
// position-ascending chain threaded through next[], -1-terminated.
type chainRef struct {
	dict, next []int32
}

func buildChainRef(b *bank.Bank, opts Options) *chainRef {
	opts = opts.normalized()
	n := seed.NumCodes(opts.W)
	r := &chainRef{
		dict: make([]int32, n),
		next: make([]int32, len(b.Data)),
	}
	for i := range r.dict {
		r.dict[i] = -1
	}
	for i := range r.next {
		r.next[i] = -1
	}
	var maskBits []bool
	if opts.Dust != nil {
		maskBits = opts.Dust.MaskBits(b.Data)
	}
	tails := make([]int32, n)
	for i := range tails {
		tails[i] = -1
	}
	step := int32(opts.SampleStep)
	phase := int32(opts.SamplePhase)
	w := opts.W
	seed.ForEach(b.Data, w, func(pos int32, c seed.Code) {
		if step > 1 && pos%step != phase {
			return
		}
		if maskBits != nil {
			for q := pos; q < pos+int32(w); q++ {
				if maskBits[q] {
					return
				}
			}
		}
		if t := tails[c]; t < 0 {
			r.dict[c] = pos
		} else {
			r.next[t] = pos
		}
		tails[c] = pos
	})
	return r
}

func (r *chainRef) walk(c seed.Code) []int32 {
	var out []int32
	for p := r.dict[c]; p >= 0; p = r.next[p] {
		out = append(out, p)
	}
	return out
}

// equalOcc compares a chain walk against a CSR slice view.
func equalOcc(chain, csr []int32) bool {
	if len(chain) != len(csr) {
		return false
	}
	for i := range chain {
		if chain[i] != csr[i] {
			return false
		}
	}
	return true
}

// Property: for every seed code, the CSR Occ slice equals the legacy
// chain walk — across random banks, dust on/off, and SampleStep in
// {1, 2, W} (every position, paper half-words, BLAT tiles).
func TestQuickCSRMatchesLegacyChain(t *testing.T) {
	f := func(seedVal int64, nRaw, wRaw, cfgRaw uint8) bool {
		w := int(wRaw)%4 + 3
		opts := Options{W: w}
		switch cfgRaw % 3 {
		case 1:
			opts.SampleStep = 2
			opts.SamplePhase = int(cfgRaw/3) % 2
		case 2:
			opts.SampleStep = w
		}
		if cfgRaw%2 == 1 {
			opts.Dust = dust.New(16, 1.5)
		}
		b := randomBank(seedVal, int(nRaw)%5+1, 200)
		ix := Build(b, opts)
		ref := buildChainRef(b, opts)
		for c := 0; c < ix.NumCodes(); c++ {
			if !equalOcc(ref.walk(seed.Code(c)), ix.Occ(seed.Code(c))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the sidecar arrays agree with the Bank lookups they
// precompute, for every occurrence.
func TestQuickSidecarMatchesBank(t *testing.T) {
	f := func(seedVal int64, nRaw uint8) bool {
		const w = 4
		b := randomBank(seedVal, int(nRaw)%5+1, 150)
		ix := Build(b, Options{W: w})
		for i, p := range ix.Pos {
			s := b.SeqAt(p)
			lo, hi := b.SeqBounds(int(s))
			if ix.OccSeq[i] != s || ix.OccLo[i] != lo || ix.OccHi[i] != hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// The parallel build must be byte-identical to the serial build — the
// shard cuts and per-shard cursor blocks are designed so the CSR output
// is canonical for any worker count. The bank is made large enough to
// clear the minParallelData serial fallback.
func TestParallelBuildMatchesSerial(t *testing.T) {
	b := randomBank(77, 4, 40000)
	if len(b.Data) < minParallelData {
		t.Fatalf("test bank too small to exercise the parallel path: %d", len(b.Data))
	}
	for _, opts := range []Options{
		{W: 8},
		{W: 8, SampleStep: 2, SamplePhase: 1},
		{W: 8, Dust: dust.New(0, 0)},
	} {
		serial := opts
		serial.Workers = 1
		want := Build(b, serial)
		for _, workers := range []int{2, 3, 7} {
			par := opts
			par.Workers = workers
			got := Build(b, par)
			if got.Indexed != want.Indexed || got.MaskedOut != want.MaskedOut || got.SampledOut != want.SampledOut {
				t.Fatalf("workers=%d counters differ: %+v vs %+v", workers, got, want)
			}
			for i := range want.Starts {
				if got.Starts[i] != want.Starts[i] {
					t.Fatalf("workers=%d opts=%+v: Starts[%d] = %d, want %d", workers, opts, i, got.Starts[i], want.Starts[i])
				}
			}
			for i := range want.Pos {
				if got.Pos[i] != want.Pos[i] {
					t.Fatalf("workers=%d opts=%+v: Pos[%d] = %d, want %d", workers, opts, i, got.Pos[i], want.Pos[i])
				}
				if got.OccSeq[i] != want.OccSeq[i] || got.OccLo[i] != want.OccLo[i] || got.OccHi[i] != want.OccHi[i] {
					t.Fatalf("workers=%d: sidecar mismatch at %d", workers, i)
				}
			}
		}
	}
}

// NextPos is now a shim (re-encode + binary search); pin its contract:
// chain successor inside the occurrence list, -1 at the tail and for
// positions the index never inserted.
func TestNextPosShimContract(t *testing.T) {
	b := randomBank(5, 3, 300)
	const w = 5
	ix := Build(b, Options{W: w, SampleStep: 2})
	for c := 0; c < ix.NumCodes(); c++ {
		occ := ix.Occ(seed.Code(c))
		for i, p := range occ {
			want := int32(-1)
			if i+1 < len(occ) {
				want = occ[i+1]
			}
			if got := ix.NextPos(p); got != want {
				t.Fatalf("NextPos(%d) = %d, want %d", p, got, want)
			}
		}
	}
	// Odd positions are sampled out under phase 0, so NextPos must
	// report them unchained even when their window is valid.
	for p := int32(1); p < int32(len(b.Data)); p += 2 {
		if _, ok := seed.Encode(b.Data[p:], w); !ok {
			continue
		}
		if got := ix.NextPos(p); got != -1 {
			t.Fatalf("NextPos(unindexed %d) = %d, want -1", p, got)
		}
	}
}
