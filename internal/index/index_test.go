package index

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/bank"
	"repro/internal/dust"
	"repro/internal/fasta"
	"repro/internal/seed"
)

func mkBank(seqs ...string) *bank.Bank {
	recs := make([]*fasta.Record, len(seqs))
	for i, s := range seqs {
		recs[i] = &fasta.Record{ID: string(rune('a' + i)), Seq: []byte(s)}
	}
	return bank.New("t", recs)
}

func TestChainsAscendingAndComplete(t *testing.T) {
	b := mkBank("ACGTACGTACGT")
	ix := Build(b, Options{W: 4})
	// Every distinct 4-mer of the sequence occurs 3 or 2 times.
	c, _ := seed.Encode(b.SeqCodes(0), 4) // code of "ACGT"
	occ := ix.Occurrences(c)
	if len(occ) != 3 {
		t.Fatalf("ACGT occurrences = %v", occ)
	}
	for i := 1; i < len(occ); i++ {
		if occ[i] <= occ[i-1] {
			t.Fatalf("chain not ascending: %v", occ)
		}
	}
}

func TestIndexedCountMatchesValidWindows(t *testing.T) {
	b := mkBank("ACGTACGT", "TTTTT", "AC")
	ix := Build(b, Options{W: 4})
	want := seed.Count(b.Data, 4)
	if ix.Indexed != want {
		t.Errorf("Indexed = %d, want %d", ix.Indexed, want)
	}
	// "AC" is too short for a window; windows never span sentinels.
	total := 0
	for c := 0; c < ix.NumCodes(); c++ {
		total += ix.CountOccurrences(seed.Code(c))
	}
	if total != want {
		t.Errorf("sum over chains = %d, want %d", total, want)
	}
}

func TestSeedsNeverSpanSequenceBoundaries(t *testing.T) {
	b := mkBank("AAAA", "AAAA")
	ix := Build(b, Options{W: 4})
	c, _ := seed.Encode(b.SeqCodes(0), 4)
	occ := ix.Occurrences(c)
	if len(occ) != 2 {
		t.Fatalf("AAAA occurrences = %v, want one per sequence", occ)
	}
	for _, p := range occ {
		if b.SeqAt(p) != b.SeqAt(p+3) {
			t.Errorf("seed at %d spans a boundary", p)
		}
	}
}

func TestEveryOccurrenceHasCorrectCode(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	letters := []byte("ACGTN")
	var seqs []string
	for i := 0; i < 5; i++ {
		n := 50 + rng.Intn(100)
		sb := make([]byte, n)
		for j := range sb {
			sb[j] = letters[rng.Intn(len(letters))]
		}
		seqs = append(seqs, string(sb))
	}
	b := mkBank(seqs...)
	const w = 5
	ix := Build(b, Options{W: w})
	for c := 0; c < ix.NumCodes(); c++ {
		for p := ix.Head(seed.Code(c)); p >= 0; p = ix.NextPos(p) {
			got, ok := seed.Encode(b.Data[p:], w)
			if !ok || got != seed.Code(c) {
				t.Fatalf("position %d chained under code %d but encodes to %d (ok=%v)", p, c, got, ok)
			}
		}
	}
}

func TestIndexMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	letters := []byte("ACGT")
	sb := make([]byte, 400)
	for i := range sb {
		sb[i] = letters[rng.Intn(4)]
	}
	b := mkBank(string(sb))
	const w = 3
	ix := Build(b, Options{W: w})
	brute := map[seed.Code][]int32{}
	seed.ForEach(b.Data, w, func(p int32, c seed.Code) {
		brute[c] = append(brute[c], p)
	})
	for c := 0; c < ix.NumCodes(); c++ {
		got := ix.Occurrences(seed.Code(c))
		want := brute[seed.Code(c)]
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("code %d: got %v want %v", c, got, want)
		}
	}
}

func TestAbsentSeedHeadIsMinusOne(t *testing.T) {
	b := mkBank("AAAA")
	ix := Build(b, Options{W: 4})
	cGGGG, _ := seed.Encode([]byte{3, 3, 3, 3}, 4)
	if ix.Head(cGGGG) != -1 {
		t.Errorf("GGGG head = %d, want -1", ix.Head(cGGGG))
	}
}

func TestDustMaskingRemovesLowComplexitySeeds(t *testing.T) {
	// Poly-A tract embedded in a random context: its seeds must vanish.
	rng := rand.New(rand.NewSource(2))
	letters := []byte("ACGT")
	mk := func(n int) string {
		x := make([]byte, n)
		for i := range x {
			x[i] = letters[rng.Intn(4)]
		}
		return string(x)
	}
	s := mk(300) + strings.Repeat("A", 150) + mk(300)
	b := mkBank(s)
	const w = 11
	plain := Build(b, Options{W: w})
	masked := Build(b, Options{W: w, Dust: dust.New(0, 0)})
	if masked.MaskedOut == 0 {
		t.Fatal("dust masked nothing")
	}
	if masked.Indexed >= plain.Indexed {
		t.Errorf("masked index not smaller: %d vs %d", masked.Indexed, plain.Indexed)
	}
	cPolyA := seed.Code(0) // AAAAAAAAAAA
	if got := masked.CountOccurrences(cPolyA); got != 0 {
		t.Errorf("poly-A seed still has %d occurrences after masking", got)
	}
	if got := plain.CountOccurrences(cPolyA); got == 0 {
		t.Error("unmasked index should contain the poly-A seed")
	}
}

func TestAsymmetricSamplingHalvesIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	letters := []byte("ACGT")
	sb := make([]byte, 4000)
	for i := range sb {
		sb[i] = letters[rng.Intn(4)]
	}
	b := mkBank(string(sb))
	full := Build(b, Options{W: 10})
	half := Build(b, Options{W: 10, SampleStep: 2})
	lo, hi := full.Indexed/2-2, full.Indexed/2+2
	if half.Indexed < lo || half.Indexed > hi {
		t.Errorf("half index has %d entries, full %d", half.Indexed, full.Indexed)
	}
	if half.SampledOut+half.Indexed != full.Indexed {
		t.Errorf("sampled(%d)+indexed(%d) != full(%d)", half.SampledOut, half.Indexed, full.Indexed)
	}
}

// Paper §3.4: with 10-nt half-word indexing on ONE bank, every 11-nt
// match is still anchored, because an 11-mer contains 10-mer seeds at two
// consecutive positions, one of which survives the parity sampling.
func TestAsymmetricSamplingCoversAll11ntMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	letters := []byte("ACGT")
	sb := make([]byte, 3000)
	for i := range sb {
		sb[i] = letters[rng.Intn(4)]
	}
	b := mkBank(string(sb))
	const w = 10
	for _, phase := range []int{0, 1} {
		half := Build(b, Options{W: w, SampleStep: 2, SamplePhase: phase})
		// For every position p that starts an 11-mer, one of p, p+1 must
		// be in the index chain for its 10-mer code.
		miss := 0
		seed.ForEach(b.Data, w+1, func(p int32, _ seed.Code) {
			found := false
			for _, q := range []int32{p, p + 1} {
				c, ok := seed.Encode(b.Data[q:], w)
				if !ok {
					continue
				}
				for r := half.Head(c); r >= 0; r = half.NextPos(r) {
					if r == q {
						found = true
						break
					}
				}
				if found {
					break
				}
			}
			if !found {
				miss++
			}
		})
		if miss != 0 {
			t.Errorf("phase %d: %d 11-mer anchors missed", phase, miss)
		}
	}
}

func TestBuildPanicsOnBadW(t *testing.T) {
	b := mkBank("ACGT")
	for _, w := range []int{0, -3, seed.MaxW + 1} {
		func() {
			defer func() { recover() }()
			Build(b, Options{W: w})
			t.Errorf("W=%d did not panic", w)
		}()
	}
}

func TestMemoryBytesMatchesPaperScale(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	letters := []byte("ACGT")
	sb := make([]byte, 100000)
	for i := range sb {
		sb[i] = letters[rng.Intn(4)]
	}
	b := mkBank(string(sb))
	ix := Build(b, Options{W: 11})
	// Paper: index structure ≈ 4N bytes (+ dictionary). Next alone is 4N.
	if ix.MemoryBytes() < 4*b.TotalBases() {
		t.Errorf("MemoryBytes = %d below 4N", ix.MemoryBytes())
	}
}

func BenchmarkBuildW11_1Mb(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	letters := []byte("ACGT")
	sb := make([]byte, 1<<20)
	for i := range sb {
		sb[i] = letters[rng.Intn(4)]
	}
	bk := mkBank(string(sb))
	b.SetBytes(int64(len(sb)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(bk, Options{W: 11})
	}
}

// TestFromPartsRejectsHostileSidecars: the reassembly constructor must
// refuse sidecar data the hot extension loops would trust as scan
// bounds, not just malformed Starts/Pos.
func TestFromPartsRejectsHostileSidecars(t *testing.T) {
	b := mkBank("ACGTACGTACGTACGT", "TTCGATCGATCGAA")
	built := Build(b, Options{W: 4})
	good := built.Parts()

	corrupt := func(mutate func(p *Parts)) error {
		p := good
		p.Pos = append([]int32(nil), good.Pos...)
		p.OccSeq = append([]int32(nil), good.OccSeq...)
		p.OccLo = append([]int32(nil), good.OccLo...)
		p.OccHi = append([]int32(nil), good.OccHi...)
		mutate(&p)
		_, err := FromParts(b, Options{W: 4}, p)
		return err
	}

	if err := corrupt(func(p *Parts) {}); err != nil {
		t.Fatalf("unmutated parts rejected: %v", err)
	}
	cases := map[string]func(p *Parts){
		"seq-out-of-range":   func(p *Parts) { p.OccSeq[0] = 99 },
		"negative-seq":       func(p *Parts) { p.OccSeq[0] = -1 },
		"hi-past-data":       func(p *Parts) { p.OccHi[0] = int32(len(b.Data)) + 100 },
		"lo-above-pos":       func(p *Parts) { p.OccLo[0] = p.Pos[0] + 1 },
		"pos-window-past-hi": func(p *Parts) { p.Pos[0] = p.OccHi[0] - 1 },
	}
	for name, mutate := range cases {
		if err := corrupt(mutate); err == nil {
			t.Errorf("%s: hostile sidecar accepted", name)
		}
	}
}
