// Block-structured index assembly for the .orix v3 on-disk format.
//
// A block is a self-contained CSR slice of a bank's index over one
// contiguous sequence range [SeqLo, SeqHi): every indexed occurrence
// whose position falls in the corresponding Data range, in the same
// code-major, position-minor order the whole-bank index uses, plus a
// sparse per-code directory (Codes/Counts) instead of a dense 4^W+1
// Starts array. Because bank coordinates are append-stable and no seed
// window straddles a sequence boundary (the sentinel byte makes such a
// window invalid), a block's content depends only on its own Data range
// — which is what makes the three block operations exact:
//
//   - SplitBlocks cuts a built index into blocks at sequence
//     boundaries without rescanning the bank;
//   - BuildBlock builds one block by scanning only its own Data range
//     (the O(suffix) append path);
//   - FromBlocks reassembles the whole-bank index from a tiling of
//     blocks, byte-identical to Build.
//
// The invariant tying them together, tested in blocks_test.go: for any
// boundary choice, FromBlocks(SplitBlocks(Build(b))) == Build(b), and
// SplitBlocks' last block == BuildBlock over the same range.
package index

import (
	"fmt"
	"slices"

	"repro/internal/bank"
	"repro/internal/seed"
)

// BlockParts is the serialized form of one index block — exactly what
// one .orix v3 block section holds. Occurrences are in CSR order:
// grouped by seed code (ascending, listed in Codes), position-sorted
// inside each group, with Counts[i] occurrences of Codes[i].
type BlockParts struct {
	// SeqLo, SeqHi bound the sequence range [SeqLo, SeqHi).
	SeqLo, SeqHi int
	// DataLo, DataHi bound the bank Data range the sequences span:
	// DataLo = bank.PrefixLen(SeqLo), DataHi = bank.PrefixLen(SeqHi).
	DataLo, DataHi int
	// Codes lists the distinct seed codes present, ascending; Counts is
	// parallel (occurrences per code, all > 0).
	Codes  []seed.Code
	Counts []int32
	// Pos and the sidecars hold the occurrences in CSR order, in
	// absolute bank coordinates (append-stable, so a stored block stays
	// valid verbatim when the bank grows).
	Pos, OccSeq, OccLo, OccHi []int32
	// MaskedOut and SampledOut count the windows of this Data range
	// rejected by dust and sampling — per-block shares of the whole-bank
	// counters (they sum exactly, since no window straddles a cut).
	MaskedOut, SampledOut int
}

// Indexed returns the number of occurrences in the block.
func (bp *BlockParts) Indexed() int { return len(bp.Pos) }

// checkCut validates that [seqLo, seqHi) is a non-empty, in-range
// sequence interval of b and returns its Data bounds.
func checkCut(b *bank.Bank, seqLo, seqHi int) (dataLo, dataHi int, err error) {
	if seqLo < 0 || seqHi <= seqLo || seqHi > b.NumSeqs() {
		return 0, 0, fmt.Errorf("index: invalid sequence range [%d,%d) of %d", seqLo, seqHi, b.NumSeqs())
	}
	return b.PrefixLen(seqLo), b.PrefixLen(seqHi), nil
}

// BuildBlock builds the index block for sequences [seqLo, seqHi) of b
// by scanning only their Data range — the incremental unit of the v3
// append path: appending sequences to a stored bank costs one
// BuildBlock over the suffix, never a rescan of the prefix. The result
// is identical to the corresponding block of SplitBlocks(Build(b)):
// sampling selects absolute Data residues, and dust masking splits runs
// at invalid bytes (sentinels included), so masking the range in
// isolation agrees with a whole-bank pass (the ExtendFromParts
// append-stability argument, DESIGN.md §7).
func BuildBlock(b *bank.Bank, opts Options, seqLo, seqHi int) (BlockParts, error) {
	opts = opts.normalized()
	if opts.W < 1 || opts.W > seed.MaxW {
		return BlockParts{}, fmt.Errorf("index: BuildBlock: invalid W=%d", opts.W)
	}
	dataLo, dataHi, err := checkCut(b, seqLo, seqHi)
	if err != nil {
		return BlockParts{}, fmt.Errorf("index: BuildBlock: %w", err)
	}
	bp := BlockParts{SeqLo: seqLo, SeqHi: seqHi, DataLo: dataLo, DataHi: dataHi}

	data := b.Data
	w := opts.W
	w32 := int32(w)
	step := int32(opts.SampleStep)
	phase := int32(opts.SamplePhase)
	base := int32(dataLo)
	var maskPfx []int32 // range-local coordinates
	if opts.Dust != nil {
		maskPfx = opts.Dust.MaskPrefix(data[dataLo:dataHi])
	}
	hint := (dataHi - dataLo + int(step) - 1) / int(step)
	// One packed code<<32|pos word per accepted window; sorting yields
	// CSR order directly (code-major, position-minor).
	occBuf := make([]uint64, 0, hint)
	scanRange(data, w, dataLo, dataHi, func(pos int32, c seed.Code) {
		if step > 1 && pos%step != phase {
			bp.SampledOut++
			return
		}
		if maskPfx != nil && maskPfx[pos-base+w32] != maskPfx[pos-base] {
			bp.MaskedOut++
			return
		}
		occBuf = append(occBuf, uint64(c)<<32|uint64(pos))
	})
	slices.Sort(occBuf)

	n := len(occBuf)
	bp.Pos = make([]int32, n)
	bp.OccSeq = make([]int32, n)
	bp.OccLo = make([]int32, n)
	bp.OccHi = make([]int32, n)
	for i, v := range occBuf {
		pos := int32(v & (1<<31 - 1))
		bp.Pos[i] = pos
		s := b.SeqAt(pos)
		bp.OccSeq[i] = s
		bp.OccLo[i], bp.OccHi[i] = b.SeqBounds(int(s))
		c := seed.Code(v >> 32)
		if k := len(bp.Codes); k == 0 || bp.Codes[k-1] != c {
			bp.Codes = append(bp.Codes, c)
			bp.Counts = append(bp.Counts, 1)
		} else {
			bp.Counts[k-1]++
		}
	}
	return bp, nil
}

// countRejects re-counts the masked/sampled windows of one Data range —
// the per-block share of the whole-bank counters, needed when a built
// index is split (Build tracks only totals). Same predicate, same
// order, same locality argument as BuildBlock's scan, minus the
// occurrence buffering.
func countRejects(b *bank.Bank, opts Options, dataLo, dataHi int) (masked, sampled int) {
	opts = opts.normalized()
	w := opts.W
	w32 := int32(w)
	step := int32(opts.SampleStep)
	phase := int32(opts.SamplePhase)
	base := int32(dataLo)
	var maskPfx []int32
	if opts.Dust != nil {
		maskPfx = opts.Dust.MaskPrefix(b.Data[dataLo:dataHi])
	}
	scanRange(b.Data, w, dataLo, dataHi, func(pos int32, c seed.Code) {
		if step > 1 && pos%step != phase {
			sampled++
			return
		}
		if maskPfx != nil && maskPfx[pos-base+w32] != maskPfx[pos-base] {
			masked++
		}
	})
	return masked, sampled
}

// SplitBlocks cuts a built index into blocks at the given ascending
// sequence boundaries (cut after every bounds[i] sequences; implicit
// cuts at 0 and NumSeqs close the tiling, and out-of-range or
// duplicate boundaries are ignored). The occurrence arrays are sliced
// and regrouped in O(Indexed); with more than one block the per-block
// dust/sampling counters cost one extra count-only scan of the bank
// (Build tracks only totals). Splitting never changes content:
// FromBlocks over the result rebuilds ix exactly.
func SplitBlocks(ix *Index, bounds []int) []BlockParts {
	b := ix.Bank
	numSeqs := b.NumSeqs()
	cuts := []int{0}
	for _, c := range slices.Sorted(slices.Values(bounds)) {
		if c > cuts[len(cuts)-1] && c < numSeqs {
			cuts = append(cuts, c)
		}
	}
	cuts = append(cuts, numSeqs)
	nb := len(cuts) - 1
	blocks := make([]BlockParts, nb)
	dataEnds := make([]int32, nb)
	for k := 0; k < nb; k++ {
		blocks[k].SeqLo, blocks[k].SeqHi = cuts[k], cuts[k+1]
		blocks[k].DataLo = b.PrefixLen(cuts[k])
		blocks[k].DataHi = b.PrefixLen(cuts[k+1])
		dataEnds[k] = int32(blocks[k].DataHi)
		if nb == 1 {
			blocks[k].MaskedOut = ix.MaskedOut
			blocks[k].SampledOut = ix.SampledOut
		} else {
			blocks[k].MaskedOut, blocks[k].SampledOut =
				countRejects(b, ix.opts, blocks[k].DataLo, blocks[k].DataHi)
		}
	}

	// One pass over the occupied codes: each code's run is ascending in
	// position, so it partitions into per-block segments by a forward
	// walk against the block Data boundaries.
	for _, c := range ix.Codes {
		s, e := ix.Starts[c], ix.Starts[c+1]
		k := 0
		for s < e {
			for ix.Pos[s] >= dataEnds[k] {
				k++
			}
			// The segment of this code's run inside block k.
			j := s
			for j < e && ix.Pos[j] < dataEnds[k] {
				j++
			}
			bk := &blocks[k]
			bk.Codes = append(bk.Codes, c)
			bk.Counts = append(bk.Counts, int32(j-s))
			bk.Pos = append(bk.Pos, ix.Pos[s:j]...)
			bk.OccSeq = append(bk.OccSeq, ix.OccSeq[s:j]...)
			bk.OccLo = append(bk.OccLo, ix.OccLo[s:j]...)
			bk.OccHi = append(bk.OccHi, ix.OccHi[s:j]...)
			s = j
		}
	}
	return blocks
}

// FromBlocks reassembles the whole-bank index from blocks tiling
// [0, b.NumSeqs()), as if Build(b, opts) had produced it. The blocks
// are untrusted (they come from disk files): the tiling is checked
// (contiguous sequence ranges, Data bounds matching the bank's real
// prefix boundaries, every position inside its block's range, counts
// consistent), the per-code runs are concatenated in block order —
// positions in block k all precede positions in block k+1, so the
// concatenation is CSR order with no sorting — and the assembled parts
// then pass the same full structural validation FromParts applies, so
// a hostile block fails closed exactly like a hostile v2 file.
func FromBlocks(b *bank.Bank, opts Options, blocks []BlockParts) (*Index, error) {
	return assembleBlocks(b, opts, blocks, false)
}

// FromBlocksPartial assembles an index holding only the given blocks'
// occurrences — the blocks must be ascending and non-overlapping but
// need not tile the bank. The result is a structurally valid index of
// b whose CSR arrays contain exactly the loaded blocks' content: a
// seed code absent from every loaded block has an empty run, exactly
// as if the bank's other sequences held no occurrences of it. This is
// the block-served shape — a store answering LoadBlocks with a subset
// of a file, or a fleet worker holding one shard of a large bank —
// and the caller owns the semantic caveat that lookups only see the
// loaded ranges. Validation is the same fail-closed pass FromBlocks
// applies, minus the coverage requirement.
func FromBlocksPartial(b *bank.Bank, opts Options, blocks []BlockParts) (*Index, error) {
	return assembleBlocks(b, opts, blocks, true)
}

func assembleBlocks(b *bank.Bank, opts Options, blocks []BlockParts, partial bool) (*Index, error) {
	opts = opts.normalized()
	if opts.W < 1 || opts.W > seed.MaxW {
		return nil, fmt.Errorf("index: FromBlocks: invalid W=%d", opts.W)
	}
	if len(blocks) == 0 {
		return nil, fmt.Errorf("index: FromBlocks: no blocks")
	}
	n := seed.NumCodes(opts.W)
	total := 0
	masked, sampled := 0, 0
	wantSeq := 0
	for i := range blocks {
		bp := &blocks[i]
		if partial {
			// Gaps are allowed; overlap and reordering are not.
			if bp.SeqLo < wantSeq {
				return nil, fmt.Errorf("index: FromBlocks: block %d covers sequences [%d,%d), overlapping earlier blocks ending at %d",
					i, bp.SeqLo, bp.SeqHi, wantSeq)
			}
		} else if bp.SeqLo != wantSeq {
			return nil, fmt.Errorf("index: FromBlocks: block %d covers sequences [%d,%d), expected to start at %d",
				i, bp.SeqLo, bp.SeqHi, wantSeq)
		}
		if bp.SeqHi <= bp.SeqLo || bp.SeqHi > b.NumSeqs() {
			return nil, fmt.Errorf("index: FromBlocks: block %d has invalid sequence range [%d,%d) of %d",
				i, bp.SeqLo, bp.SeqHi, b.NumSeqs())
		}
		if bp.DataLo != b.PrefixLen(bp.SeqLo) || bp.DataHi != b.PrefixLen(bp.SeqHi) {
			return nil, fmt.Errorf("index: FromBlocks: block %d records Data range [%d,%d), bank's sequences [%d,%d) span [%d,%d)",
				i, bp.DataLo, bp.DataHi, bp.SeqLo, bp.SeqHi, b.PrefixLen(bp.SeqLo), b.PrefixLen(bp.SeqHi))
		}
		if len(bp.Codes) != len(bp.Counts) {
			return nil, fmt.Errorf("index: FromBlocks: block %d has %d codes but %d counts",
				i, len(bp.Codes), len(bp.Counts))
		}
		if len(bp.OccSeq) != len(bp.Pos) || len(bp.OccLo) != len(bp.Pos) || len(bp.OccHi) != len(bp.Pos) {
			return nil, fmt.Errorf("index: FromBlocks: block %d sidecar lengths %d/%d/%d, want %d",
				i, len(bp.OccSeq), len(bp.OccLo), len(bp.OccHi), len(bp.Pos))
		}
		var sum int
		for j, c := range bp.Codes {
			if int(c) < 0 || int(c) >= n {
				return nil, fmt.Errorf("index: FromBlocks: block %d code %d outside the 4^%d code space", i, c, opts.W)
			}
			if j > 0 && bp.Codes[j-1] >= c {
				return nil, fmt.Errorf("index: FromBlocks: block %d codes not strictly ascending at entry %d", i, j)
			}
			if bp.Counts[j] < 1 {
				return nil, fmt.Errorf("index: FromBlocks: block %d count %d for code %d", i, bp.Counts[j], c)
			}
			sum += int(bp.Counts[j])
		}
		if sum != len(bp.Pos) {
			return nil, fmt.Errorf("index: FromBlocks: block %d counts sum to %d for %d positions", i, sum, len(bp.Pos))
		}
		lo, hi := int32(bp.DataLo), int32(bp.DataHi)
		for _, p := range bp.Pos {
			if p < lo || p >= hi {
				return nil, fmt.Errorf("index: FromBlocks: block %d position %d outside its Data range [%d,%d)", i, p, lo, hi)
			}
		}
		total += len(bp.Pos)
		masked += bp.MaskedOut
		sampled += bp.SampledOut
		wantSeq = bp.SeqHi
	}
	if !partial && wantSeq != b.NumSeqs() {
		return nil, fmt.Errorf("index: FromBlocks: blocks cover %d sequences, bank has %d", wantSeq, b.NumSeqs())
	}

	ix := &Index{
		Bank:       b,
		W:          opts.W,
		Starts:     make([]int32, n+1),
		Pos:        make([]int32, total),
		OccSeq:     make([]int32, total),
		OccLo:      make([]int32, total),
		OccHi:      make([]int32, total),
		Indexed:    total,
		MaskedOut:  masked,
		SampledOut: sampled,
		opts:       opts,
	}
	// Counting-sort assembly, the serial Build trick: accumulate per-code
	// counts into Starts[c+1], prefix-sum them into per-code cursors
	// (recording the occupied-code directory for free), then copy each
	// block's runs to its codes' cursors. Blocks arrive in ascending
	// Data order, so each code's concatenated run stays position-sorted.
	st := ix.Starts
	for i := range blocks {
		for j, c := range blocks[i].Codes {
			st[c+1] += blocks[i].Counts[j]
		}
	}
	var running int32
	for c := 0; c < n; c++ {
		if k := st[c+1]; k != 0 {
			st[c+1] = running
			running += k
			ix.Codes = append(ix.Codes, seed.Code(c))
		} else {
			st[c+1] = running
		}
	}
	for i := range blocks {
		bp := &blocks[i]
		var off int32
		for j, c := range bp.Codes {
			cnt := bp.Counts[j]
			dst := st[c+1]
			copy(ix.Pos[dst:], bp.Pos[off:off+cnt])
			copy(ix.OccSeq[dst:], bp.OccSeq[off:off+cnt])
			copy(ix.OccLo[dst:], bp.OccLo[off:off+cnt])
			copy(ix.OccHi[dst:], bp.OccHi[off:off+cnt])
			st[c+1] = dst + cnt
			off += cnt
		}
	}
	// After the scatter, Starts[c+1] sits on the inclusive end of group
	// c — the final CSR prefix-sum array.
	if err := checkParts(b, opts, ix.Parts(), int32(len(b.Data))); err != nil {
		return nil, fmt.Errorf("index: FromBlocks: assembled parts invalid: %w", err)
	}
	return ix, nil
}
