package index

import (
	"strings"
	"testing"

	"repro/internal/bank"
	"repro/internal/dust"
	"repro/internal/fasta"
	"repro/internal/seed"
)

// extendRecs builds deterministic records covering the format's edge
// content: ambiguous bases, a poly-A dust magnet, an empty record, and
// a record shorter than any W.
func extendRecs(n int) []*fasta.Record {
	const alpha = "ACGT"
	buf := make([]byte, n)
	state := uint32(424242)
	for i := range buf {
		state = state*1664525 + 1013904223
		buf[i] = alpha[state>>30]
	}
	return []*fasta.Record{
		{ID: "r0", Seq: buf[:n/3]},
		{ID: "r1", Seq: append([]byte(strings.Repeat("A", 40)+"NN"), buf[n/3:2*n/3]...)},
		{ID: "r2", Seq: []byte{}},
		{ID: "r3", Seq: []byte("ACG")},
		{ID: "r4", Seq: buf[2*n/3:]},
	}
}

func extendVariants() map[string]Options {
	return map[string]Options{
		"plain":     {W: 8},
		"dust":      {W: 8, Dust: dust.New(0, 0)},
		"halfword":  {W: 7, SampleStep: 2},
		"phase1":    {W: 7, SampleStep: 2, SamplePhase: 1},
		"negPhase":  {W: 7, SampleStep: 3, SamplePhase: -1},
		"dust+half": {W: 8, Dust: dust.New(32, 1.5), SampleStep: 2},
	}
}

func samePartsT(t *testing.T, want, got Parts) {
	t.Helper()
	if want.Indexed != got.Indexed || want.MaskedOut != got.MaskedOut || want.SampledOut != got.SampledOut {
		t.Errorf("counters differ: want %d/%d/%d, got %d/%d/%d",
			want.Indexed, want.MaskedOut, want.SampledOut, got.Indexed, got.MaskedOut, got.SampledOut)
	}
	check := func(name string, a, b []int32) {
		if len(a) != len(b) {
			t.Errorf("%s length: want %d, got %d", name, len(a), len(b))
			return
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s differs at %d: want %d, got %d", name, i, a[i], b[i])
				return
			}
		}
	}
	check("Starts", want.Starts, got.Starts)
	check("Pos", want.Pos, got.Pos)
	check("OccSeq", want.OccSeq, got.OccSeq)
	check("OccLo", want.OccLo, got.OccLo)
	check("OccHi", want.OccHi, got.OccHi)
	if len(want.Codes) != len(got.Codes) {
		t.Errorf("Codes length: want %d, got %d", len(want.Codes), len(got.Codes))
	} else {
		for i := range want.Codes {
			if want.Codes[i] != got.Codes[i] {
				t.Errorf("Codes differs at %d", i)
				break
			}
		}
	}
}

// TestExtendFromPartsMatchesBuild is the core equivalence property: for
// every option shape and every split point, extending a prefix build by
// the appended suffix is indistinguishable from a cold full build.
func TestExtendFromPartsMatchesBuild(t *testing.T) {
	recs := extendRecs(3000)
	for name, opts := range extendVariants() {
		t.Run(name, func(t *testing.T) {
			full := bank.New("b", recs)
			want := Build(full, opts)
			for k := 1; k < len(recs); k++ {
				prefix := bank.New("b", recs[:k])
				boundary := full.PrefixLen(k)
				if boundary != len(prefix.Data) {
					t.Fatalf("PrefixLen(%d)=%d, want %d", k, boundary, len(prefix.Data))
				}
				got, err := ExtendFromParts(full, opts, Build(prefix, opts).Parts(), boundary)
				if err != nil {
					t.Fatalf("split %d: %v", k, err)
				}
				samePartsT(t, want.Parts(), got.Parts())
				if got.Bank != full || got.W != want.W {
					t.Fatalf("split %d: extended index not bound to the full bank", k)
				}
			}
		})
	}
}

// TestExtendFromPartsEmptySuffix: a boundary equal to len(Data) is the
// degenerate append — the result must still equal the stored index.
func TestExtendFromPartsEmptySuffix(t *testing.T) {
	b := bank.New("b", extendRecs(1200))
	opts := Options{W: 8}
	built := Build(b, opts)
	got, err := ExtendFromParts(b, opts, built.Parts(), len(b.Data))
	if err != nil {
		t.Fatal(err)
	}
	samePartsT(t, built.Parts(), got.Parts())
}

func TestExtendFromPartsRejects(t *testing.T) {
	recs := extendRecs(1200)
	full := bank.New("b", recs)
	prefix := bank.New("b", recs[:2])
	opts := Options{W: 8}
	old := Build(prefix, opts).Parts()
	boundary := full.PrefixLen(2)

	t.Run("bad-W", func(t *testing.T) {
		if _, err := ExtendFromParts(full, Options{W: 0}, old, boundary); err == nil {
			t.Error("invalid W accepted")
		}
	})
	t.Run("boundary-not-sentinel", func(t *testing.T) {
		for _, bad := range []int{0, boundary - 1, len(full.Data) + 1} {
			if _, err := ExtendFromParts(full, opts, old, bad); err == nil {
				t.Errorf("boundary %d accepted", bad)
			}
		}
	})
	t.Run("positions-beyond-boundary", func(t *testing.T) {
		// A "prefix" file that actually indexes the whole bank: every
		// occurrence is structurally valid for the full bank, but some
		// lie beyond the claimed boundary — accepting it would double
		// the suffix occurrences.
		whole := Build(full, opts).Parts()
		if _, err := ExtendFromParts(full, opts, whole, boundary); err == nil {
			t.Error("stored occurrences beyond the boundary accepted")
		}
	})
	t.Run("truncated-sidecar", func(t *testing.T) {
		mangled := old
		mangled.OccSeq = mangled.OccSeq[:len(mangled.OccSeq)/2]
		if _, err := ExtendFromParts(full, opts, mangled, boundary); err == nil {
			t.Error("inconsistent sidecar accepted")
		}
	})
}

// TestExtendPreservesAccessors spot-checks the merged index through the
// public accessors against the full rebuild.
func TestExtendPreservesAccessors(t *testing.T) {
	recs := extendRecs(2000)
	full := bank.New("b", recs)
	prefix := bank.New("b", recs[:3])
	opts := Options{W: 6, Dust: dust.New(0, 0)}
	want := Build(full, opts)
	got, err := ExtendFromParts(full, opts, Build(prefix, opts).Parts(), full.PrefixLen(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range want.Parts().Codes {
		w := want.Occ(seed.Code(c))
		g := got.Occ(seed.Code(c))
		if len(w) != len(g) {
			t.Fatalf("code %d: occ lengths %d vs %d", c, len(w), len(g))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("code %d: occ[%d] %d vs %d", c, i, w[i], g[i])
			}
		}
		if want.Head(seed.Code(c)) != got.Head(seed.Code(c)) {
			t.Fatalf("code %d: Head differs", c)
		}
	}
}
