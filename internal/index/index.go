// Package index implements the ORIS bank index of paper §2.1 / Fig. 2:
// a dictionary of 4^W entries holding, for every possible seed code, the
// position of its first occurrence in the bank, plus an INDEX array that
// chains together all positions sharing the same seed. Walking
// Head(code) → Next → Next … visits every occurrence of a seed in
// strictly increasing position order, which step 2 of the algorithm
// relies on (the canonical HSP generator is the *leftmost* occurrence of
// the minimal seed).
//
// The index also implements the paper's two refinements:
//
//   - low-complexity filtering (§2.1): masked W-words are simply not
//     inserted;
//   - asymmetric indexing (§3.4): with SampleStep=2 only every other
//     position of the bank is inserted, which with W=10 still catches
//     every 11-nt match while halving the index.
package index

import (
	"fmt"

	"repro/internal/bank"
	"repro/internal/dust"
	"repro/internal/seed"
)

// Options configures index construction.
type Options struct {
	// W is the seed length in nucleotides (paper default 11).
	W int
	// Dust, when non-nil, masks low-complexity W-words out of the index.
	Dust *dust.Masker
	// SampleStep inserts only positions p with p % SampleStep ==
	// SamplePhase (in bank Data coordinates). 0 or 1 means every
	// position. SampleStep=2 is the paper's "half words" mode.
	SampleStep int
	// SamplePhase selects which residue class SampleStep keeps.
	SamplePhase int
}

func (o Options) normalized() Options {
	if o.SampleStep < 1 {
		o.SampleStep = 1
	}
	o.SamplePhase %= o.SampleStep
	if o.SamplePhase < 0 {
		o.SamplePhase += o.SampleStep
	}
	return o
}

// Index is the built structure. Dict and Next use -1 as the nil link.
type Index struct {
	Bank *bank.Bank
	W    int

	// Dict[c] is the first (lowest) bank position whose seed code is c,
	// or -1 if the seed does not occur.
	Dict []int32
	// Next[p] is the next-higher position with the same seed code as
	// position p, or -1. Entries for non-indexed positions are -1.
	Next []int32

	// Indexed is the number of positions inserted.
	Indexed int
	// MaskedOut counts seed windows rejected by the dust filter.
	MaskedOut int
	// Sampled counts windows skipped by SampleStep.
	SampledOut int

	opts Options
}

// Build constructs the index for a bank.
func Build(b *bank.Bank, opts Options) *Index {
	opts = opts.normalized()
	if opts.W < 1 || opts.W > seed.MaxW {
		panic(fmt.Sprintf("index: invalid W=%d", opts.W))
	}
	n := seed.NumCodes(opts.W)
	ix := &Index{
		Bank: b,
		W:    opts.W,
		Dict: make([]int32, n),
		Next: make([]int32, len(b.Data)),
		opts: opts,
	}
	for i := range ix.Dict {
		ix.Dict[i] = -1
	}
	for i := range ix.Next {
		ix.Next[i] = -1
	}

	var maskBits []bool
	if opts.Dust != nil {
		maskBits = opts.Dust.MaskBits(b.Data)
	}

	// tails[c] is the last inserted position for code c; freed after
	// the build. A single ascending scan keeps chains position-sorted.
	tails := make([]int32, n)
	for i := range tails {
		tails[i] = -1
	}
	step := int32(opts.SampleStep)
	phase := int32(opts.SamplePhase)
	w := opts.W
	seed.ForEach(b.Data, w, func(pos int32, c seed.Code) {
		if step > 1 && pos%step != phase {
			ix.SampledOut++
			return
		}
		if maskBits != nil {
			for q := pos; q < pos+int32(w); q++ {
				if maskBits[q] {
					ix.MaskedOut++
					return
				}
			}
		}
		if t := tails[c]; t < 0 {
			ix.Dict[c] = pos
		} else {
			ix.Next[t] = pos
		}
		tails[c] = pos
		ix.Indexed++
	})
	return ix
}

// Head returns the first position of seed code c, or -1.
func (ix *Index) Head(c seed.Code) int32 { return ix.Dict[c] }

// NextPos returns the next position sharing p's seed code, or -1.
func (ix *Index) NextPos(p int32) int32 { return ix.Next[p] }

// Occurrences collects every position of code c (ascending). Intended
// for tests and diagnostics; hot paths walk the chain directly.
func (ix *Index) Occurrences(c seed.Code) []int32 {
	var out []int32
	for p := ix.Dict[c]; p >= 0; p = ix.Next[p] {
		out = append(out, p)
	}
	return out
}

// CountOccurrences walks the chain of c and returns its length.
func (ix *Index) CountOccurrences(c seed.Code) int {
	n := 0
	for p := ix.Dict[c]; p >= 0; p = ix.Next[p] {
		n++
	}
	return n
}

// NumCodes returns the dictionary size 4^W.
func (ix *Index) NumCodes() int { return len(ix.Dict) }

// MemoryBytes reports the footprint of Dict+Next, the "INDEX" part of
// the paper's ≈5N bytes/bank estimate.
func (ix *Index) MemoryBytes() int { return 4 * (len(ix.Dict) + len(ix.Next)) }

// Options returns the options the index was built with.
func (ix *Index) Options() Options { return ix.opts }
