// Package index implements the ORIS bank index of paper §2.1 / Fig. 2
// as a CSR (compressed sparse row) table built by counting sort: a
// prefix-sum array Starts of 4^W+1 entries plus one flat, cache-
// contiguous occurrence array Pos holding every indexed position,
// grouped by seed code and position-sorted inside each group. Occ(code)
// is a contiguous []int32 slice view, so step 2's sweep over the seed
// codes reads the occurrence lists sequentially — the paper's whole
// speed argument ("all the portions of sequence having the same seed
// are implicitly and simultaneously moved into the cache") realized as
// an actual memory layout instead of the linked Dict/Next chains the
// seed implementation pointer-chased (see DESIGN.md §2).
//
// Per-occurrence sidecar arrays (OccSeq, OccLo, OccHi) precompute the
// owning sequence and its Data bounds so the hot extension loops never
// call Bank.SeqAt/SeqBounds per hit pair.
//
// The build is two parallel passes over disjoint bank ranges: sharded
// count → serial prefix sum (which also turns the per-shard counts into
// scatter cursors) → sharded scatter. The output is canonical — byte-
// identical for any worker count — because shards cover ascending
// position ranges and the prefix sum orders each shard's cursor block
// after all lower shards' occurrences of the same code.
//
// The index keeps the paper's two refinements:
//
//   - low-complexity filtering (§2.1): masked W-words are simply not
//     inserted; the mask test is O(1) per window via a prefix-sum of
//     masked positions;
//   - asymmetric indexing (§3.4): with SampleStep=2 only every other
//     position of the bank is inserted, which with W=10 still catches
//     every 11-nt match while halving the index.
//
// # Reuse contract
//
// A built Index is immutable: Build is the only writer, nothing
// mutates the arrays afterwards, and every accessor returns views or
// copies. Any number of goroutines may therefore read one Index
// concurrently without synchronization, and an Index may be held and
// reused for as long as its bank lives. The converse bound: an Index
// is valid only for the exact (bank, Options) pair it was built from —
// the bank whose Data it indexed and the exact W, sampling schedule,
// and dust parameters (Workers changes nothing: the build is canonical
// for any worker count). Callers that reuse indexes across comparisons
// should go through package ixcache, which keys cached builds by
// exactly that identity and whose consumers (core.CompareWithIndex,
// blat.CompareWithIndex) verify it before running.
package index

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/bank"
	"repro/internal/dust"
	"repro/internal/seed"
)

// Options configures index construction.
type Options struct {
	// W is the seed length in nucleotides (paper default 11).
	W int
	// Dust, when non-nil, masks low-complexity W-words out of the index.
	Dust *dust.Masker
	// SampleStep inserts only positions p with p % SampleStep ==
	// SamplePhase (in bank Data coordinates). 0 or 1 means every
	// position. SampleStep=2 is the paper's "half words" mode.
	SampleStep int
	// SamplePhase selects which residue class SampleStep keeps.
	SamplePhase int
	// Workers bounds build parallelism; 0 means GOMAXPROCS. The built
	// index is identical for every worker count.
	Workers int
}

// Normalized returns o in the canonical form Build uses and a built
// index's Options() reports: SampleStep < 1 becomes 1 and SamplePhase
// is reduced into [0, SampleStep). Cache keys and the on-disk store
// derive their identity fields from this form so equivalent option
// spellings alias to one artifact.
func (o Options) Normalized() Options { return o.normalized() }

func (o Options) normalized() Options {
	if o.SampleStep < 1 {
		o.SampleStep = 1
	}
	o.SamplePhase %= o.SampleStep
	if o.SamplePhase < 0 {
		o.SamplePhase += o.SampleStep
	}
	return o
}

// Index is the built CSR structure.
type Index struct {
	Bank *bank.Bank
	W    int

	// Starts is the CSR prefix-sum array, length 4^W+1: the occurrences
	// of code c live in Pos[Starts[c]:Starts[c+1]], ascending.
	Starts []int32
	// Pos is the flat occurrence array, length Indexed.
	Pos []int32

	// Codes lists the occupied seed codes in ascending order — the
	// directory a step-2-style sweep iterates instead of scanning all
	// 4^W dictionary entries (most of which are empty at any realistic
	// bank size). Built for free during the prefix-sum pass.
	Codes []seed.Code

	// OccSeq[i], OccLo[i], OccHi[i] are the owning sequence of Pos[i]
	// and its half-open Data bounds, precomputed so hit loops skip the
	// per-position Bank lookups.
	OccSeq []int32
	OccLo  []int32
	OccHi  []int32

	// Indexed is the number of positions inserted.
	Indexed int
	// MaskedOut counts seed windows rejected by the dust filter.
	MaskedOut int
	// SampledOut counts windows skipped by SampleStep.
	SampledOut int

	opts Options
}

// minParallelData is the bank size below which the build stays serial;
// goroutine + shard bookkeeping costs more than it saves under ~64 KB.
const minParallelData = 1 << 16

// countBudgetBytes caps the transient per-shard count buffers
// (4·4^W bytes each), bounding build memory for large W.
const countBudgetBytes = 256 << 20

// buildWorkers picks the shard count for a build.
func buildWorkers(opts Options, dataLen, numCodes int) int {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if dataLen < minParallelData {
		return 1
	}
	if most := countBudgetBytes / (4 * numCodes); w > most {
		w = most
	}
	if w < 1 {
		w = 1
	}
	return w
}

// scanRange reports every valid W-window starting in Data positions
// [lo,hi). The scan reads ahead up to W-1 bytes past hi so windows that
// straddle a shard cut are still seen by exactly one shard (the one
// owning their start position).
func scanRange(data []byte, w, lo, hi int, fn func(pos int32, c seed.Code)) {
	end := hi + w - 1
	if end > len(data) {
		end = len(data)
	}
	base := int32(lo)
	seed.ForEach(data[lo:end], w, func(rel int32, c seed.Code) {
		fn(base+rel, c)
	})
}

// shardTally carries one shard's pass-1 counters.
type shardTally struct {
	indexed, masked, sampled int
}

// Build constructs the index for a bank.
func Build(b *bank.Bank, opts Options) *Index {
	opts = opts.normalized()
	if opts.W < 1 || opts.W > seed.MaxW {
		panic(fmt.Sprintf("index: invalid W=%d", opts.W))
	}
	n := seed.NumCodes(opts.W)
	ix := &Index{
		Bank:   b,
		W:      opts.W,
		Starts: make([]int32, n+1),
		opts:   opts,
	}

	// O(N) dust preprocessing: a prefix count of masked positions makes
	// the per-window test a single subtraction instead of a W-bit scan.
	var maskPfx []int32
	if opts.Dust != nil {
		maskPfx = opts.Dust.MaskPrefix(b.Data)
	}

	data := b.Data
	w := opts.W
	w32 := int32(w)
	step := int32(opts.SampleStep)
	phase := int32(opts.SamplePhase)

	workers := buildWorkers(opts, len(data), n)
	cuts := make([]int, workers+1)
	for i := range cuts {
		cuts[i] = i * len(data) / workers
	}

	// ---- pass 1: sharded count, buffering accepted (pos, code) pairs
	// so pass 2 scatters from sequential buffers instead of re-scanning
	// and re-encoding the bank. The serial path counts straight into
	// Starts[c+1] (the prefix pass below converts it in place), skipping
	// a whole 4·4^W-byte counts allocation ----
	counts := make([][]int32, workers)
	occBufs := make([][]uint64, workers)
	tallies := make([]shardTally, workers)
	runShards(workers, func(sid int) {
		lo, hi := cuts[sid], cuts[sid+1]
		hint := (hi - lo + int(step) - 1) / int(step)
		var cnt []int32
		if workers == 1 {
			cnt = ix.Starts[1:]
		} else {
			cnt = make([]int32, n)
		}
		// One packed pos<<32|code word per occurrence: a single
		// sequential append stream (pos needs 31 bits, code ≤ 30).
		occBuf := make([]uint64, 0, hint)
		t := &tallies[sid]
		scanRange(data, w, lo, hi, func(pos int32, c seed.Code) {
			if step > 1 && pos%step != phase {
				t.sampled++
				return
			}
			if maskPfx != nil && maskPfx[pos+w32] != maskPfx[pos] {
				t.masked++
				return
			}
			cnt[c]++
			t.indexed++
			occBuf = append(occBuf, uint64(pos)<<32|uint64(c))
		})
		counts[sid], occBufs[sid] = cnt, occBuf
	})
	for i := range tallies {
		ix.Indexed += tallies[i].indexed
		ix.MaskedOut += tallies[i].masked
		ix.SampledOut += tallies[i].sampled
	}

	// ---- prefix sum + pass 2: scatter positions ----
	ix.Pos = make([]int32, ix.Indexed)
	if hint := ix.Indexed; hint > n {
		ix.Codes = make([]seed.Code, 0, n)
	} else {
		ix.Codes = make([]seed.Code, 0, hint)
	}
	if workers == 1 {
		// Serial fast path: the classic in-place counting-sort trick.
		// Pass 1 counted into Starts[c+1]; here Starts[c+1] becomes the
		// cursor of code c, seeded at its exclusive prefix. Each
		// placement bumps it, so after the scatter Starts[c+1] has
		// landed on the inclusive end of group c — the final CSR array,
		// with no separate counts buffer or cursor pass at all.
		st := ix.Starts
		var running int32
		for c := 0; c < n; c++ {
			if k := st[c+1]; k != 0 {
				st[c+1] = running
				running += k
				ix.Codes = append(ix.Codes, seed.Code(c))
			} else {
				st[c+1] = running
			}
		}
		for _, v := range occBufs[0] {
			c := uint32(v)
			i := st[c+1]
			st[c+1] = i + 1
			ix.Pos[i] = int32(v >> 32)
		}
	} else {
		// Parallel path: the prefix sum turns the per-shard counts into
		// per-shard scatter cursors, ordering shard sid's block of code
		// c after all lower shards' blocks of the same code.
		var running int32
		for c := 0; c < n; c++ {
			ix.Starts[c] = running
			for sid := 0; sid < workers; sid++ {
				k := counts[sid][c]
				counts[sid][c] = running
				running += k
			}
			if running != ix.Starts[c] {
				ix.Codes = append(ix.Codes, seed.Code(c))
			}
		}
		ix.Starts[n] = running
		runShards(workers, func(sid int) {
			cur := counts[sid]
			for _, v := range occBufs[sid] {
				c := uint32(v)
				i := cur[c]
				cur[c] = i + 1
				ix.Pos[i] = int32(v >> 32)
			}
		})
	}

	// ---- pass 3: sidecar fill. A separate sweep so the writes are
	// sequential (the scatter above writes Pos at random cursor
	// positions; OccSeq/OccLo/OccHi here stream in index order) ----
	ix.OccSeq = make([]int32, ix.Indexed)
	ix.OccLo = make([]int32, ix.Indexed)
	ix.OccHi = make([]int32, ix.Indexed)
	occCuts := make([]int, workers+1)
	for i := range occCuts {
		occCuts[i] = i * ix.Indexed / workers
	}
	runShards(workers, func(sid int) {
		for i := occCuts[sid]; i < occCuts[sid+1]; i++ {
			s := b.SeqAt(ix.Pos[i])
			ix.OccSeq[i] = s
			ix.OccLo[i], ix.OccHi[i] = b.SeqBounds(int(s))
		}
	})
	return ix
}

// runShards executes fn(0..workers-1), concurrently when workers > 1.
func runShards(workers int, fn func(sid int)) {
	if workers == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	for sid := 0; sid < workers; sid++ {
		wg.Add(1)
		go func(sid int) {
			defer wg.Done()
			fn(sid)
		}(sid)
	}
	wg.Wait()
}

// Parts holds the serialized components of a built Index — exactly the
// arrays and counters an on-disk store (package ixdisk) persists. The
// slices may alias read-only memory (an mmap'd file section): nothing
// in this package writes to a reassembled Index, per the immutability
// contract above.
type Parts struct {
	Starts, Pos          []int32
	Codes                []seed.Code
	OccSeq, OccLo, OccHi []int32
	Indexed              int
	MaskedOut            int
	SampledOut           int
}

// Parts returns the serializable components of ix. The slices are the
// index's own arrays, not copies; callers must treat them as read-only.
func (ix *Index) Parts() Parts {
	return Parts{
		Starts: ix.Starts, Pos: ix.Pos, Codes: ix.Codes,
		OccSeq: ix.OccSeq, OccLo: ix.OccLo, OccHi: ix.OccHi,
		Indexed: ix.Indexed, MaskedOut: ix.MaskedOut, SampledOut: ix.SampledOut,
	}
}

// FromParts reassembles an Index from serialized components, as if
// Build(b, opts) had produced it. It validates the structural
// invariants that every accessor depends on — array lengths consistent
// with W and Indexed, Starts a monotone prefix sum from 0 to Indexed,
// Codes exactly the occupied-code directory — so a corrupted or
// mismatched file cannot yield an Index whose hot loops read out of
// bounds. Content-level integrity (the right positions for this bank)
// is the storage layer's job: ixdisk checksums the file and keys it by
// bank identity before calling FromParts.
func FromParts(b *bank.Bank, opts Options, p Parts) (*Index, error) {
	opts = opts.normalized()
	if opts.W < 1 || opts.W > seed.MaxW {
		return nil, fmt.Errorf("index: FromParts: invalid W=%d", opts.W)
	}
	if err := checkParts(b, opts, p, int32(len(b.Data))); err != nil {
		return nil, err
	}
	return &Index{
		Bank: b, W: opts.W,
		Starts: p.Starts, Pos: p.Pos, Codes: p.Codes,
		OccSeq: p.OccSeq, OccLo: p.OccLo, OccHi: p.OccHi,
		Indexed: p.Indexed, MaskedOut: p.MaskedOut, SampledOut: p.SampledOut,
		opts: opts,
	}, nil
}

// checkParts validates the structural invariants of serialized parts
// against bank b: array lengths consistent with W and Indexed, Starts a
// monotone prefix sum from 0 to Indexed, Codes exactly the occupied
// directory, and every occurrence inside the bounds of the sequence its
// sidecar entry names (with the sidecar bounds being that sequence's
// real bounds). posLimit is an exclusive upper bound on occurrence
// start positions: len(Data) for a whole-bank reassembly, the prefix
// boundary for ExtendFromParts — which is how a hostile "prefix" file
// claiming occurrences beyond its recorded boundary is rejected instead
// of being double-inserted by the extension scan.
//
//scorislint:validator
func checkParts(b *bank.Bank, opts Options, p Parts, posLimit int32) error {
	n := seed.NumCodes(opts.W)
	if len(p.Starts) != n+1 {
		return fmt.Errorf("index: FromParts: Starts has %d entries, want 4^%d+1=%d",
			len(p.Starts), opts.W, n+1)
	}
	if p.Starts[0] != 0 {
		return fmt.Errorf("index: FromParts: Starts[0]=%d, want 0", p.Starts[0])
	}
	if len(p.Pos) != p.Indexed || int(p.Starts[n]) != p.Indexed {
		return fmt.Errorf("index: FromParts: Indexed=%d but len(Pos)=%d, Starts[end]=%d",
			p.Indexed, len(p.Pos), p.Starts[n])
	}
	if len(p.OccSeq) != p.Indexed || len(p.OccLo) != p.Indexed || len(p.OccHi) != p.Indexed {
		return fmt.Errorf("index: FromParts: sidecar lengths %d/%d/%d, want Indexed=%d",
			len(p.OccSeq), len(p.OccLo), len(p.OccHi), p.Indexed)
	}
	occupied := 0
	for c := 0; c < n; c++ {
		if p.Starts[c+1] < p.Starts[c] {
			return fmt.Errorf("index: FromParts: Starts not monotone at code %d", c)
		}
		if p.Starts[c+1] > p.Starts[c] {
			if occupied >= len(p.Codes) || p.Codes[occupied] != seed.Code(c) {
				return fmt.Errorf("index: FromParts: Codes directory disagrees with Starts at code %d", c)
			}
			occupied++
		}
	}
	if occupied != len(p.Codes) {
		return fmt.Errorf("index: FromParts: Codes has %d entries beyond the %d occupied codes",
			len(p.Codes), occupied)
	}
	// Per-occurrence validation: every position must sit inside the
	// bounds of the sequence its sidecar entry names, and the sidecar
	// bounds must be that sequence's real bounds — so a hostile file
	// can never make the hot extension loops (which trust OccLo/OccHi
	// as scan limits) read outside the bank. The per-sequence bounds are
	// gathered up front and the parallel arrays re-sliced to a common
	// length so the O(Indexed) sweep runs without per-element method
	// calls or redundant bounds checks (this sweep is the validation
	// cost of every disk load and every suffix extension).
	numSeqs := b.NumSeqs()
	lows := make([]int32, numSeqs)
	his := make([]int32, numSeqs)
	for s := 0; s < numSeqs; s++ {
		lows[s], his[s] = b.SeqBounds(s)
	}
	w32 := int32(opts.W)
	pos := p.Pos
	occSeq := p.OccSeq[:len(pos)]
	occLo := p.OccLo[:len(pos)]
	occHi := p.OccHi[:len(pos)]
	for i := range pos {
		s := occSeq[i]
		if s < 0 || int(s) >= numSeqs {
			return fmt.Errorf("index: FromParts: OccSeq[%d]=%d outside [0,%d)", i, s, numSeqs)
		}
		lo, hi := lows[s], his[s]
		if occLo[i] != lo || occHi[i] != hi {
			return fmt.Errorf("index: FromParts: sidecar bounds [%d,%d) for position %d disagree with sequence %d bounds [%d,%d)",
				occLo[i], occHi[i], pos[i], s, lo, hi)
		}
		if pos[i] < lo || pos[i]+w32 > hi {
			return fmt.Errorf("index: FromParts: position %d (W=%d) outside its sequence bounds [%d,%d)",
				pos[i], opts.W, lo, hi)
		}
		if pos[i] >= posLimit {
			return fmt.Errorf("index: FromParts: position %d at or beyond the recorded data boundary %d",
				pos[i], posLimit)
		}
	}
	return nil
}

// Occ returns the occurrences of code c as a contiguous ascending slice
// view into the flat array — the hot-loop accessor. Callers must not
// mutate it.
func (ix *Index) Occ(c seed.Code) []int32 {
	return ix.Pos[ix.Starts[c]:ix.Starts[c+1]]
}

// OccRange returns the half-open [start,end) range of c's occurrences
// inside Pos and the sidecar arrays, for loops that need OccSeq/OccLo/
// OccHi alongside the positions.
func (ix *Index) OccRange(c seed.Code) (start, end int32) {
	return ix.Starts[c], ix.Starts[c+1]
}

// Head returns the first (lowest) position of seed code c, or -1 — the
// legacy chain-API shim over the CSR slice.
func (ix *Index) Head(c seed.Code) int32 {
	s, e := ix.Starts[c], ix.Starts[c+1]
	if s == e {
		return -1
	}
	return ix.Pos[s]
}

// NextPos returns the next-higher indexed position sharing p's seed
// code, or -1. It is a compatibility shim over the CSR layout (re-encode
// p's window, binary-search its occurrence slice); hot paths iterate
// Occ/OccRange slices instead.
func (ix *Index) NextPos(p int32) int32 {
	c, ok := seed.Encode(ix.Bank.Data[p:], ix.W)
	if !ok {
		return -1
	}
	occ := ix.Occ(c)
	i := sort.Search(len(occ), func(i int) bool { return occ[i] >= p })
	if i < len(occ) && occ[i] == p && i+1 < len(occ) {
		return occ[i+1]
	}
	return -1
}

// Occurrences returns a copy of every position of code c (ascending).
// Intended for tests and diagnostics; hot paths use Occ.
func (ix *Index) Occurrences(c seed.Code) []int32 {
	return append([]int32(nil), ix.Occ(c)...)
}

// CountOccurrences returns the number of occurrences of c.
func (ix *Index) CountOccurrences(c seed.Code) int {
	return int(ix.Starts[c+1] - ix.Starts[c])
}

// NumCodes returns the dictionary size 4^W.
func (ix *Index) NumCodes() int { return len(ix.Starts) - 1 }

// MemoryBytes reports the footprint of the CSR arrays (Starts + Pos +
// sidecar), the "INDEX" part of the paper's ≈5N bytes/bank estimate;
// DESIGN.md §3 gives the exact math for this layout.
func (ix *Index) MemoryBytes() int {
	return 4 * (len(ix.Starts) + len(ix.Pos) + len(ix.Codes) +
		len(ix.OccSeq) + len(ix.OccLo) + len(ix.OccHi))
}

// Options returns the options the index was built with.
func (ix *Index) Options() Options { return ix.opts }
