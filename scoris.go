// Package scoris is the public API of this repository: a Go
// reproduction of SCORIS-N, the ORIS (ORdered Index Seed) intensive DNA
// sequence comparison system of Lavenier, "Ordered Index Seed Algorithm
// for Intensive DNA Sequence Comparison" (HiCOMB/IPDPS 2008), together
// with a faithful BLASTN-style baseline for the paper's benchmarks.
//
// Quick start — the prepared-bank session API is the idiomatic entry
// point: build each bank's index once, then compare as many pairs as
// the workload has (the intensive-comparison pattern the ORIS design
// front-loads its index build for):
//
//	db, _ := scoris.LoadBank("db", "db.fasta")
//	cache := scoris.NewIndexCache(0) // 0 = default bound
//	opt := scoris.DefaultOptions()
//	for _, path := range queryFiles {
//		queries, _ := scoris.LoadBank(path, path)
//		p1, p2, _ := scoris.Prepare(cache, db, queries, opt)
//		res, _ := scoris.CompareWithIndex(p1, p2, opt) // db indexed once
//		scoris.WriteM8(os.Stdout, res, db, queries)
//	}
//
// For a one-shot pair, Compare bundles the build and the comparison:
//
//	res, _ := scoris.Compare(bankA, bankB, scoris.DefaultOptions())
//
// The heavy lifting lives in internal packages; this package re-exports
// the stable surface: bank loading, prepared-bank sessions, the
// engines, m8 output, and the sensitivity comparator used by the
// paper's evaluation.
package scoris

import (
	"context"
	"fmt"
	"io"

	"repro/internal/align"
	"repro/internal/bank"
	"repro/internal/blastn"
	"repro/internal/core"
	"repro/internal/fasta"
	"repro/internal/fleet"
	"repro/internal/gapped"
	"repro/internal/ixcache"
	"repro/internal/ixdisk"
	"repro/internal/render"
	"repro/internal/sensemetric"
	"repro/internal/server"
	"repro/internal/tabular"
)

// Bank is an in-memory, 2-bit-encoded DNA bank (paper §2.1).
type Bank = bank.Bank

// Alignment is one gapped alignment between two bank sequences.
type Alignment = align.Alignment

// Options configures the ORIS engine (see core.Options for fields).
type Options = core.Options

// Result is the ORIS engine output: alignments plus run metrics.
type Result = core.Result

// Metrics exposes the per-step counters and timings of a run.
type Metrics = core.Metrics

// BlastnOptions configures the baseline engine.
type BlastnOptions = blastn.Options

// BlastnResult is the baseline engine output.
type BlastnResult = blastn.Result

// M8Record is one line of BLAST "-m 8" tabular output.
type M8Record = tabular.Record

// SensitivityReport holds the paper's §3.4 missed-alignment counters.
type SensitivityReport = sensemetric.Report

// Strand selection re-exports.
const (
	// PlusOnly searches a single strand (the paper's -S 1 mode).
	PlusOnly = core.PlusOnly
	// BothStrands also searches the reverse complement of bank 2.
	BothStrands = core.BothStrands
)

// DefaultOptions returns the paper-plausible ORIS configuration
// (W=11, +1/−3, gap 5/2, E ≤ 1e-3, dust on, single strand).
func DefaultOptions() Options { return core.DefaultOptions() }

// DefaultBlastnOptions mirrors the paper's blastall invocation.
func DefaultBlastnOptions() BlastnOptions { return blastn.DefaultOptions() }

// LoadBank reads a FASTA file into a Bank.
func LoadBank(name, path string) (*Bank, error) {
	return bank.FromFile(name, path)
}

// ParseBank parses in-memory FASTA text into a Bank.
func ParseBank(name string, fastaText []byte) (*Bank, error) {
	recs, err := fasta.ParseAll(fastaText)
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("scoris: bank %q: no sequences", name)
	}
	return bank.New(name, recs), nil
}

// Compare runs the ORIS pipeline (SCORIS-N) on two banks, building both
// indexes in place. Bank 1 plays the subject/database role of the
// paper's experiments, bank 2 the query role; E-values use m = bank-1
// residues × n = query length. Workloads that reuse a bank across pairs
// should Prepare once and call CompareWithIndex.
func Compare(bank1, bank2 *Bank, opt Options) (*Result, error) {
	return core.Compare(bank1, bank2, opt)
}

// Prepared pairs a bank with the immutable index built from it for one
// exact Options derivation. A Prepared value is safe for any number of
// concurrent readers and valid only for the (bank, options) it was
// built from — see package ixcache for the full reuse contract.
type Prepared = ixcache.Prepared

// IndexCache is a concurrency-safe, size-bounded LRU of prepared banks;
// concurrent callers share one index build per (bank, options) key.
type IndexCache = ixcache.Cache

// NewIndexCache returns a cache bounded to maxEntries prepared banks
// (a default bound when maxEntries is non-positive).
func NewIndexCache(maxEntries int) *IndexCache { return ixcache.New(maxEntries) }

// IndexStore is the persistent second tier an IndexCache consults below
// its in-memory LRU (lookup order: memory → store → build, with
// write-back), so index builds amortize across processes.
type IndexStore = ixcache.Store

// DirIndexStore is the on-disk IndexStore implementation: one
// versioned, checksummed file per (bank content, index options) key,
// memory-mapped on load where the platform supports it. Identity is
// per-sequence, so a bank that has only been appended to reuses its
// stored index through an O(suffix) extension instead of a rebuild.
// See DESIGN.md §7 for the format, invalidation, and lifecycle rules.
//
// The store is operable under sustained traffic: SetSavePolicy bounds
// what is persisted (IndexSavePolicy), SetGC + GC bound the directory
// itself (IndexGCConfig), and MarkDB hints the long-lived database
// side of a workload.
type DirIndexStore = ixdisk.DirStore

// IndexSavePolicy bounds what a DirIndexStore persists: only marked
// database banks (DBOnly), or only banks of at least MinBases bases —
// so single-use query indexes never hit disk. The zero value persists
// everything.
type IndexSavePolicy = ixdisk.SavePolicy

// IndexGCConfig bounds a DirIndexStore directory by total size and/or
// file age; stale temp files from killed writers are always swept. See
// DirIndexStore.SetGC and GC.
type IndexGCConfig = ixdisk.GCConfig

// IndexGCStats reports one store collection.
type IndexGCStats = ixdisk.GCStats

// SeqRange selects the sequences [Lo, Hi) of a bank — the unit of a
// partial, block-granular index load.
type SeqRange = ixcache.SeqRange

// BlockIndexStore is the block-aware store contract layered over
// IndexStore: partial loads of only the blocks covering requested
// sequence ranges (LoadBlocks) and O(suffix) persistence of an
// appended-to bank (AppendBlock). DirIndexStore implements it; a plain
// IndexStore keeps working everywhere through the embedded Load/Save
// compat surface. See DESIGN.md §7 for the block format these
// operations ride on.
type BlockIndexStore = ixcache.BlockStore

// BlockIndexCounters exposes the block-level amortization ledger a
// block-aware store keeps: how many blocks were decoded from disk and
// how many appends landed in place. IndexCache.Counters folds these in
// when its store implements them.
type BlockIndexCounters = ixcache.BlockCounters

// IndexFileInfo is the metadata ProbeIndexFile reads from a stored
// index file without touching its payload: format version, options and
// bank identity, and (v3) the per-block directory.
type IndexFileInfo = ixdisk.FileInfo

// IndexBlockInfo describes one block of a v3 index file.
type IndexBlockInfo = ixdisk.BlockInfo

// ProbeIndexFile reads a stored .orix file's metadata — a few KiB of
// header and footer, never the index payload — and reports what the
// file claims to hold. Loaders re-validate everything; a successful
// probe authorizes nothing.
func ProbeIndexFile(path string) (*IndexFileInfo, error) { return ixdisk.Probe(path) }

// NewDirIndexStore returns an on-disk index store rooted at dir
// (created if absent). Attach it with IndexCache.SetStore; repeated
// processes comparing against the same banks then skip every index
// build after the first:
//
//	cache := scoris.NewIndexCache(0)
//	store, _ := scoris.NewDirIndexStore(".scoris-index")
//	cache.SetStore(store)
func NewDirIndexStore(dir string) (*DirIndexStore, error) { return ixdisk.NewDirStore(dir) }

// Prepare builds — or fetches from cache, which may be nil for direct
// builds — the prepared indexes Compare would derive for (bank1, bank2)
// under opt. The results feed CompareWithIndex any number of times.
func Prepare(cache *IndexCache, bank1, bank2 *Bank, opt Options) (p1, p2 *Prepared, err error) {
	return core.Prepare(cache, bank1, bank2, opt)
}

// Emit receives one query sequence's finished alignments from a
// streamed compare. It is called once per bank-2 sequence, in bank
// order, empty groups included; returning an error (or the ctx
// cancelling) stops the compare. The concatenation of the emitted
// groups is exactly Compare's Alignments slice.
type Emit = core.Emit

// CompareStream runs the ORIS pipeline like Compare but delivers each
// query sequence's alignments through emit the moment they are final,
// instead of accumulating the whole result. The returned Result carries
// the run metrics only (its Alignments slice is nil). ctx cancellation
// is honored mid-run — between query groups and at extension-chunk
// claims — which is what makes abandoning a long compare cheap.
func CompareStream(ctx context.Context, bank1, bank2 *Bank, opt Options, emit Emit) (*Result, error) {
	return core.CompareStream(ctx, bank1, bank2, opt, emit)
}

// CompareStreamWithIndex is CompareStream over prepared banks, with the
// same reuse contract as CompareWithIndex: both prepared values must
// match opt exactly.
func CompareStreamWithIndex(ctx context.Context, p1, p2 *Prepared, opt Options, emit Emit) (*Result, error) {
	return core.CompareStreamWithIndex(ctx, p1, p2, opt, emit)
}

// CompareWithIndex runs the ORIS pipeline on prepared banks, skipping
// the index builds. Both prepared values must match opt exactly or an
// error is returned.
func CompareWithIndex(p1, p2 *Prepared, opt Options) (*Result, error) {
	return core.CompareWithIndex(p1, p2, opt)
}

// CompareServer is the embeddable form of the scorisd comparison
// service: bank registry, bounded-concurrency compare endpoints served
// from prepared indexes, blastn session checkout pool, and live
// cache/store counters. Mount Handler() on an http.Server; see package
// internal/server for the request lifecycle and cmd/scorisd for the
// daemon wiring (graceful drain, store flags).
type CompareServer = server.Server

// CompareServerConfig bounds a CompareServer: worker pool size,
// admission queue depth, per-request Workers cap, cache size, and the
// optional persistent index store tier.
type CompareServerConfig = server.Config

// CompareServerStats is the /stats payload of a CompareServer.
type CompareServerStats = server.Stats

// NewCompareServer returns a comparison service for cfg (zero value:
// all defaults, no persistent store).
func NewCompareServer(cfg CompareServerConfig) *CompareServer { return server.New(cfg) }

// FleetRouter is the bank-affinity coordinator over a pool of
// CompareServer workers: registrations fan out to each bank's
// rendezvous owners, compares route to live owners with retry, backoff,
// and backfill across replicas, and a health loop tracks workers
// through up/draining/down. Mount Handler() on an http.Server and call
// Start/Stop around its lifetime; see internal/fleet for the routing
// and degradation semantics and cmd/scoris-router for the daemon.
type FleetRouter = fleet.Router

// FleetRouterConfig tunes a FleetRouter: replication factor, probe
// cadence, retry/backoff shape, and deadlines (zero value: defaults for
// a small local fleet).
type FleetRouterConfig = fleet.Config

// FleetStats is the router's /stats payload: its own routing counters,
// a per-worker breakdown, and fleet-wide totals.
type FleetStats = fleet.Stats

// NewFleetRouter returns a router for cfg; add workers with AddWorker
// (or POST /workers) and call Start to begin health probing.
func NewFleetRouter(cfg FleetRouterConfig) *FleetRouter { return fleet.New(cfg) }

// BlastnSession is the baseline's prepared form: one database bank plus
// reusable engine state, for searching many query banks against one db.
type BlastnSession = blastn.Session

// NewBlastnSession validates opt and prepares a session for db.
func NewBlastnSession(db *Bank, opt BlastnOptions) (*BlastnSession, error) {
	return blastn.NewSession(db, opt)
}

// CompareBlastn runs the BLASTN-style baseline: one full scan of bank 1
// per bank-2 sequence, as 2007-era blastall did.
func CompareBlastn(bank1, bank2 *Bank, opt BlastnOptions) (*BlastnResult, error) {
	return blastn.Compare(bank1, bank2, opt)
}

// ToM8 converts alignments to m8 records (query = bank 2 sequence,
// subject = bank 1 sequence).
func ToM8(alignments []Alignment, bank1, bank2 *Bank) []M8Record {
	out := make([]M8Record, len(alignments))
	for i := range alignments {
		out[i] = tabular.FromAlignment(&alignments[i], bank1, bank2)
	}
	return out
}

// WriteM8 writes a result in BLAST -m 8 format.
func WriteM8(w io.Writer, res *Result, bank1, bank2 *Bank) error {
	return tabular.Write(w, ToM8(res.Alignments, bank1, bank2))
}

// WriteBlastnM8 writes a baseline result in BLAST -m 8 format.
func WriteBlastnM8(w io.Writer, res *BlastnResult, bank1, bank2 *Bank) error {
	return tabular.Write(w, ToM8(res.Alignments, bank1, bank2))
}

// CompareSensitivity applies the paper's 80%-overlap equivalence to two
// m8 result sets (first argument: SCORIS-N output, second: BLASTN
// output) and returns the missed-alignment report of §3.4.
func CompareSensitivity(scorisOut, blastOut []M8Record) SensitivityReport {
	return sensemetric.Compare(scorisOut, blastOut, sensemetric.DefaultMinOverlap)
}

// WritePairwise writes full BLAST-style pairwise alignment blocks (the
// -m 0 display the paper's prototype omits). opt must be the Options
// the result was computed with, so the alignment paths can be recovered
// exactly. Minus-strand alignments are not renderable and produce an
// error.
func WritePairwise(w io.Writer, res *Result, bank1, bank2 *Bank, opt Options) error {
	r := render.New(bank1, bank2, gapped.FromScoring(opt.Scoring, opt.GappedXDrop))
	text, err := r.RenderAll(res.Alignments)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, text)
	return err
}
